// Tests for the geometric home-topology model: segment intersection,
// wall attenuation, per-technology range limits, and bus wiring.
#include <gtest/gtest.h>

#include "workload/topology.hpp"

namespace riv::workload {
namespace {

using devices::Technology;

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance_m({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_m({1, 1}, {1, 1}), 0.0);
}

TEST(Geometry, SegmentsIntersect) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 1}, {2, 2}, {3, 3}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  // Parallel overlapping segments do not "properly" intersect.
  EXPECT_FALSE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
}

HostPlacement host_at(std::uint16_t id, double x, double y) {
  HostPlacement h;
  h.process = ProcessId{id};
  h.name = "h" + std::to_string(id);
  h.position = {x, y};
  h.adapters = {Technology::kZWave, Technology::kZigbee, Technology::kIp};
  return h;
}

TEST(Topology, WallsBetweenCounts) {
  HomeTopology topo;
  topo.add_wall({{5, 0}, {5, 10}, 1.0});
  topo.add_wall({{7, 0}, {7, 10}, 1.0});
  EXPECT_EQ(topo.walls_between({0, 5}, {10, 5}), 2);
  EXPECT_EQ(topo.walls_between({0, 5}, {4, 5}), 0);
}

TEST(Topology, RangeLimitPerTechnology) {
  HomeTopology topo;
  HostPlacement near = host_at(1, 10.0, 0.0);
  HostPlacement far = host_at(2, 30.0, 0.0);
  topo.add_host(near);
  topo.add_host(far);
  // Zigbee range is 15 m: the near host hears, the far one does not.
  LinkEstimate near_est = topo.estimate({0, 0}, near, Technology::kZigbee);
  LinkEstimate far_est = topo.estimate({0, 0}, far, Technology::kZigbee);
  EXPECT_TRUE(near_est.in_range);
  EXPECT_FALSE(far_est.in_range);
  // Z-Wave reaches 40 m: both hear.
  EXPECT_TRUE(topo.estimate({0, 0}, far, Technology::kZWave).in_range);
}

TEST(Topology, MissingAdapterMeansUnreachable) {
  HomeTopology topo;
  HostPlacement h = host_at(1, 1.0, 0.0);
  h.adapters = {Technology::kIp};  // no Z-Wave radio
  EXPECT_FALSE(topo.estimate({0, 0}, h, Technology::kZWave).in_range);
}

TEST(Topology, WallsIncreaseLossAndShrinkRange) {
  HomeTopology topo;
  HostPlacement h = host_at(1, 12.0, 0.0);
  LinkEstimate open = topo.estimate({0, 0}, h, Technology::kZWave);
  topo.add_wall({{6, -5}, {6, 5}, 1.0});
  LinkEstimate walled = topo.estimate({0, 0}, h, Technology::kZWave);
  ASSERT_TRUE(open.in_range);
  ASSERT_TRUE(walled.in_range);
  EXPECT_EQ(walled.walls_crossed, 1);
  EXPECT_GT(walled.loss_prob, open.loss_prob);
  // A heavy concrete wall can push the host out of range entirely.
  topo.add_wall({{7, -5}, {7, 5}, 3.0});
  LinkEstimate concrete = topo.estimate({0, 0}, h, Technology::kZigbee);
  EXPECT_FALSE(concrete.in_range);
}

TEST(Topology, LossGrowsTowardRangeEdge) {
  HomeTopology topo;
  HostPlacement close = host_at(1, 5.0, 0.0);
  HostPlacement edge = host_at(2, 38.0, 0.0);
  LinkEstimate c = topo.estimate({0, 0}, close, Technology::kZWave);
  LinkEstimate e = topo.estimate({0, 0}, edge, Technology::kZWave);
  ASSERT_TRUE(c.in_range);
  ASSERT_TRUE(e.in_range);
  EXPECT_GT(e.loss_prob, c.loss_prob + 0.1);
}

TEST(Topology, WiresBusFromGeometry) {
  sim::Simulation sim(5);
  devices::HomeBus bus(sim);
  HomeTopology topo = sample_home(
      {ProcessId{1}, ProcessId{2}, ProcessId{3}});

  devices::SensorSpec door;
  door.id = SensorId{1};
  door.name = "front-door";
  door.kind = devices::SensorKind::kDoor;
  door.tech = Technology::kZigbee;  // short range: placement matters
  bus.add_sensor(door);
  topo.place_sensor(SensorId{1}, {2.0, 1.0});  // in the living room

  devices::ActuatorSpec lamp;
  lamp.id = ActuatorId{1};
  lamp.name = "lamp";
  lamp.tech = Technology::kZigbee;
  bus.add_actuator(lamp);
  topo.place_actuator(ActuatorId{1}, {14.5, 2.0});  // kitchen

  topo.wire(bus);
  // The living-room TV (p2, at 2.5/3.0) certainly hears the door; the
  // kitchen fridge (p3, at 14/3, ~12 m away through two walls) does not
  // reach it over Zigbee.
  EXPECT_TRUE(bus.sensor_in_range(ProcessId{2}, SensorId{1}));
  EXPECT_FALSE(bus.sensor_in_range(ProcessId{3}, SensorId{1}));
  // The lamp next to the fridge is actuated from the kitchen host.
  EXPECT_TRUE(bus.actuator_in_range(ProcessId{3}, ActuatorId{1}));
  EXPECT_FALSE(bus.actuator_in_range(ProcessId{2}, ActuatorId{1}));
}

TEST(Topology, SampleHomeHasHeterogeneousConnectivity) {
  HomeTopology topo = sample_home({ProcessId{1}, ProcessId{2}, ProcessId{3},
                                   ProcessId{4}, ProcessId{5}});
  EXPECT_EQ(topo.hosts().size(), 5u);
  // A Zigbee device in the utility room behind the concrete partition:
  // only the nearby washer host should hear it.
  topo.place_sensor(SensorId{1}, {15.5, 8.0});
  auto reachable = topo.reachable_hosts(SensorId{1}, Technology::kZigbee);
  ASSERT_GE(reachable.size(), 1u);
  EXPECT_LT(reachable.size(), 5u);
  bool washer_reaches = false;
  for (const auto& [p, est] : reachable)
    washer_reaches |= p == ProcessId{4};
  EXPECT_TRUE(washer_reaches);
}

}  // namespace
}  // namespace riv::workload
