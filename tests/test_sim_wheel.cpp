// Timer-wheel kernel edge cases (DESIGN.md §9).
//
// The wheel replaced a binary-heap kernel whose semantics the whole stack
// depends on: fire order is exactly (time, scheduling seq), cancel is a
// no-op after firing, and far-future timers behave identically to near
// ones. These tests pin the tricky transitions — cancel-while-firing,
// same-instant ties, overflow promotion, slot wraparound — and close with
// a differential run against a straightforward heap reference over 1e6
// random operations.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace riv::sim {
namespace {

// Wheel geometry mirrored from simulation.hpp (private there): 4 levels of
// 64 slots at 1 µs ticks.
constexpr std::int64_t kSlot = 64;
constexpr std::int64_t kHorizon = std::int64_t{1} << 24;

TEST(SimWheel, CancelWhileFiringSameInstant) {
  Simulation sim(1);
  std::vector<int> fired;
  TimerId b = 0;
  // a and b are due at the same instant; a (earlier seq) fires first and
  // cancels b, which must then never run even though it was already due.
  sim.schedule_at(TimePoint{100}, [&] {
    fired.push_back(1);
    sim.cancel(b);
  });
  b = sim.schedule_at(TimePoint{100}, [&] { fired.push_back(2); });
  TimerId c = sim.schedule_at(TimePoint{100}, [&] { fired.push_back(3); });
  (void)c;
  sim.run_until(TimePoint{200});
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimWheel, CancelSelfWhileFiringIsANoOp) {
  Simulation sim(1);
  int fired = 0;
  TimerId a = 0;
  a = sim.schedule_at(TimePoint{5}, [&] {
    ++fired;
    sim.cancel(a);  // already firing: must not corrupt the slab
  });
  sim.schedule_at(TimePoint{6}, [&] { ++fired; });
  sim.run_all();
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.is_pending(a));
}

TEST(SimWheel, ScheduleAtNowPreservesSeqOrder) {
  Simulation sim(1);
  std::vector<int> fired;
  sim.run_until(TimePoint{50});
  // Ties at the current instant — including one scheduled from inside a
  // callback — fire strictly in scheduling order.
  sim.schedule_at(TimePoint{50}, [&] {
    fired.push_back(1);
    sim.schedule_at(TimePoint{50}, [&] { fired.push_back(4); });
  });
  sim.schedule_at(TimePoint{50}, [&] { fired.push_back(2); });
  sim.schedule_at(TimePoint{50}, [&] { fired.push_back(3); });
  sim.run_until(TimePoint{50});
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SimWheel, FarFutureOverflowPromotion) {
  Simulation sim(1);
  std::vector<int> fired;
  // Far beyond the wheel horizon (overflow heap), near the boundary, and
  // well inside the wheel; they must fire in time order regardless of
  // which structure initially held them.
  sim.schedule_at(TimePoint{3 * kHorizon}, [&] { fired.push_back(3); });
  sim.schedule_at(TimePoint{kHorizon + 7}, [&] { fired.push_back(2); });
  sim.schedule_at(TimePoint{123}, [&] { fired.push_back(1); });
  EXPECT_EQ(sim.pending_count(), 3u);
  sim.run_until(TimePoint{kHorizon});
  EXPECT_EQ(fired, (std::vector<int>{1}));
  sim.run_until(TimePoint{4 * kHorizon});
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimWheel, CancelInsideOverflowNeverFires) {
  Simulation sim(1);
  int fired = 0;
  TimerId far = sim.schedule_at(TimePoint{2 * kHorizon}, [&] { ++fired; });
  sim.cancel(far);
  EXPECT_FALSE(sim.is_pending(far));
  sim.run_until(TimePoint{3 * kHorizon});
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimWheel, WraparoundAcrossLevelBoundaries) {
  Simulation sim(1);
  std::vector<std::int64_t> fired_at;
  // Hit every delicate offset around level-0 and level-1 revolutions,
  // scheduled from a non-zero cursor position so slots genuinely wrap.
  sim.run_until(TimePoint{37});
  const std::int64_t offsets[] = {0,
                                  1,
                                  kSlot - 1,
                                  kSlot,
                                  kSlot + 1,
                                  2 * kSlot,
                                  kSlot * kSlot - 1,
                                  kSlot * kSlot,
                                  kSlot * kSlot + 1,
                                  2 * kSlot * kSlot};
  for (std::int64_t off : offsets) {
    TimePoint t{37 + off};
    sim.schedule_at(t, [&fired_at, t] { fired_at.push_back(t.us); });
  }
  sim.run_until(TimePoint{37 + 3 * kSlot * kSlot});
  std::vector<std::int64_t> expected;
  for (std::int64_t off : offsets) expected.push_back(37 + off);
  EXPECT_EQ(fired_at, expected);
}

TEST(SimWheel, RepeatedRevolutionsKeepPeriodicTimersExact) {
  Simulation sim(1);
  // A keep-alive style periodic timer crossing many full level-0
  // revolutions must fire exactly on its grid.
  std::vector<std::int64_t> fired_at;
  const std::int64_t period = 17;  // coprime with the 64-slot level
  std::function<void()> tick = [&] {
    fired_at.push_back(sim.now().us);
    if (fired_at.size() < 1000)
      sim.schedule_after(Duration{period}, tick);
  };
  sim.schedule_after(Duration{period}, tick);
  sim.run_until(TimePoint{period * 2000});
  ASSERT_EQ(fired_at.size(), 1000u);
  for (std::size_t i = 0; i < fired_at.size(); ++i)
    EXPECT_EQ(fired_at[i], static_cast<std::int64_t>(i + 1) * period);
}

// --- differential test vs a reference heap kernel ------------------------

// The kernel the wheel replaced, reduced to its semantics: a (time, seq)
// min-heap plus an id map, ties broken by scheduling order.
class ReferenceKernel {
 public:
  TimerId schedule_at(std::int64_t t, std::function<void()> cb) {
    TimerId id = next_id_++;
    heap_.push({t, next_seq_++, id});
    cbs_.emplace(id, std::move(cb));
    return id;
  }
  void cancel(TimerId id) { cbs_.erase(id); }
  void run_until(std::int64_t t) {
    while (!heap_.empty() && heap_.top().t <= t) {
      Entry e = heap_.top();
      heap_.pop();
      auto it = cbs_.find(e.id);
      if (it == cbs_.end()) continue;  // cancelled
      std::function<void()> cb = std::move(it->second);
      cbs_.erase(it);
      now_ = e.t;
      cb();
    }
    now_ = t;
  }
  void run_all() {
    while (!heap_.empty()) run_until(heap_.top().t);
  }
  std::int64_t now() const { return now_; }
  std::size_t pending() const { return cbs_.size(); }

 private:
  struct Entry {
    std::int64_t t;
    std::uint64_t seq;
    TimerId id;
    bool operator>(const Entry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };
  std::int64_t now_{0};
  TimerId next_id_{1};
  std::uint64_t next_seq_{0};
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<TimerId, std::function<void()>> cbs_;
};

struct Op {
  enum Kind { kSchedule, kCancel, kAdvance } kind;
  std::int64_t delay{0};   // kSchedule: offset from now; kAdvance: step
  std::uint64_t target{0};  // kCancel: id to cancel
};

// Pre-generate the op stream so both kernels see the exact same program.
std::vector<Op> make_ops(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(n);
  std::uint64_t issued = 0;
  std::size_t live_estimate = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double r = rng.uniform();
    // Bias toward draining when the pending set gets large so the test
    // exercises fire paths as hard as schedule paths.
    if (live_estimate > 20000) r = 0.95;
    if (r < 0.55 || issued == 0) {
      std::int64_t d;
      double shape = rng.uniform();
      if (shape < 0.70) {
        d = static_cast<std::int64_t>(rng.uniform_int(4096));  // near
      } else if (shape < 0.95) {
        d = static_cast<std::int64_t>(rng.uniform_int(1 << 20));  // mid
      } else {
        d = kHorizon +
            static_cast<std::int64_t>(rng.uniform_int(kHorizon));  // far
      }
      ops.push_back({Op::kSchedule, d, 0});
      ++issued;
      ++live_estimate;
    } else if (r < 0.75) {
      ops.push_back({Op::kCancel, 0, 1 + rng.uniform_int(issued)});
      if (live_estimate > 0) --live_estimate;
    } else {
      std::int64_t step =
          1 + static_cast<std::int64_t>(rng.uniform_int(50000));
      ops.push_back({Op::kAdvance, step, 0});
      live_estimate = live_estimate / 2;  // rough decay
    }
  }
  return ops;
}

TEST(SimWheelDifferential, MillionRandomOpsMatchReferenceHeap) {
  const std::size_t kOps = 1'000'000;
  const std::vector<Op> ops = make_ops(kOps, 42);
  // Fired labels in dispatch order — the complete observable behavior of
  // a timer kernel (both kernels run the same program, so a divergence in
  // firing *time* necessarily shows up as a divergence in *order*). The
  // k-th schedule op gets label k in both kernels, which also makes the
  // issued TimerIds line up, so kCancel targets mean the same timer.
  std::vector<std::uint64_t> wheel_log, ref_log;
  wheel_log.reserve(kOps);
  ref_log.reserve(kOps);

  {
    Simulation wheel(7);
    std::uint64_t label = 0;
    std::int64_t now = 0;
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::kSchedule: {
          const std::uint64_t l = ++label;
          wheel.schedule_at(TimePoint{now + op.delay},
                            [&wheel_log, l] { wheel_log.push_back(l); });
          break;
        }
        case Op::kCancel:
          wheel.cancel(op.target);
          break;
        case Op::kAdvance:
          now += op.delay;
          wheel.run_until(TimePoint{now});
          break;
      }
    }
    wheel.run_all();
    EXPECT_EQ(wheel.pending_count(), 0u);
  }
  {
    ReferenceKernel ref;
    std::uint64_t label = 0;
    std::int64_t now = 0;
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::kSchedule: {
          const std::uint64_t l = ++label;
          ref.schedule_at(now + op.delay,
                          [&ref_log, l] { ref_log.push_back(l); });
          break;
        }
        case Op::kCancel:
          ref.cancel(op.target);
          break;
        case Op::kAdvance:
          now += op.delay;
          ref.run_until(now);
          break;
      }
    }
    ref.run_all();
    EXPECT_EQ(ref.pending(), 0u);
  }

  ASSERT_EQ(wheel_log.size(), ref_log.size());
  // EXPECT_EQ on the whole vectors would dump a million elements on
  // failure; report the first divergence instead.
  for (std::size_t i = 0; i < wheel_log.size(); ++i) {
    ASSERT_EQ(wheel_log[i], ref_log[i]) << "first divergence at index " << i;
  }
}

}  // namespace
}  // namespace riv::sim
