// Unit tests of the GaplessStream state machine in isolation, driven
// through a scripted StreamContext: ring-successor math, the exact §4.1
// reliable-broadcast fallback condition (seen ∧ S≠V ∧ p_i∈S), re-flood
// semantics, and successor sync re-sends.
#include <gtest/gtest.h>

#include "core/delivery/gapless_stream.hpp"

namespace riv::core {
namespace {

struct Sent {
  ProcessId dst;
  net::MsgType type;
  std::vector<std::byte> payload;
};

struct Harness {
  explicit Harness(std::uint16_t self_id, std::vector<std::uint16_t> view_ids)
      : sim(1), timers(sim), log(AppId{1}, nullptr, 1000) {
    for (std::uint16_t v : view_ids) view.insert(ProcessId{v});

    StreamContext ctx;
    ctx.self = ProcessId{self_id};
    ctx.app = AppId{1};
    appmodel::SensorEdge edge;
    edge.sensor = SensorId{1};
    edge.guarantee = appmodel::Guarantee::kGapless;
    edge.window = appmodel::WindowSpec::count_window(1);
    ctx.edge = edge;
    ctx.in_range = true;
    for (std::uint16_t v : view_ids) {
      ctx.all_processes.push_back(ProcessId{v});
      ctx.in_range_processes.push_back(ProcessId{v});
    }
    ctx.view = [this]() -> const std::set<ProcessId>& { return view; };
    ctx.chain = [this] {
      return std::vector<ProcessId>(view.begin(), view.end());
    };
    ctx.logic_active_here = [] { return true; };
    ctx.deliver = [this](const devices::SensorEvent& e) {
      delivered.push_back(e.id);
    };
    ctx.send = [this](ProcessId dst, net::MsgType type,
                      std::vector<std::byte> payload) {
      sent.push_back({dst, type, std::move(payload)});
    };
    ctx.staleness = [](std::uint32_t) {};
    ctx.poll = [](std::uint32_t) {};
    ctx.timers = &timers;
    ctx.log = &log;
    stream = std::make_unique<GaplessStream>(std::move(ctx));
  }

  devices::SensorEvent event(std::uint32_t seq) {
    devices::SensorEvent e;
    e.id = {SensorId{1}, seq};
    e.emitted_at = sim.now();
    e.payload_size = 4;
    return e;
  }

  static std::set<ProcessId> pids(std::vector<std::uint16_t> ids) {
    std::set<ProcessId> out;
    for (std::uint16_t i : ids) out.insert(ProcessId{i});
    return out;
  }

  sim::Simulation sim;
  sim::ProcessTimers timers;
  EventLog log;
  std::set<ProcessId> view;
  std::vector<EventId> delivered;
  std::vector<Sent> sent;
  std::unique_ptr<GaplessStream> stream;
};

TEST(GaplessUnit, IngestDeliversLogsAndForwardsToSuccessor) {
  Harness h(2, {1, 2, 3});
  h.stream->on_device_event(h.event(1));
  EXPECT_EQ(h.delivered.size(), 1u);
  EXPECT_TRUE(h.log.seen({SensorId{1}, 1}));
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].dst, ProcessId{3});  // successor of p2 in {1,2,3}
  EXPECT_EQ(h.sent[0].type, net::MsgType::kRingEvent);
  wire::RingPayload p = wire::decode_ring(h.sent[0].payload);
  EXPECT_EQ(p.seen, Harness::pids({2}));
  EXPECT_EQ(p.need, Harness::pids({1, 2, 3}));
}

TEST(GaplessUnit, HighestIdWrapsToLowest) {
  Harness h(3, {1, 2, 3});
  h.stream->on_device_event(h.event(1));
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].dst, ProcessId{1});
}

TEST(GaplessUnit, SingletonViewSendsNothing) {
  Harness h(1, {1});
  h.stream->on_device_event(h.event(1));
  EXPECT_TRUE(h.sent.empty());
  EXPECT_EQ(h.delivered.size(), 1u);
}

TEST(GaplessUnit, DuplicateDeviceDeliveryIgnored) {
  Harness h(2, {1, 2, 3});
  h.stream->on_device_event(h.event(1));
  h.stream->on_device_event(h.event(1));
  EXPECT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.sent.size(), 1u);
}

TEST(GaplessUnit, UnseenRingMessageExtendsSetsAndForwards) {
  Harness h(2, {1, 2, 3});
  wire::RingPayload in;
  in.app = AppId{1};
  in.sensor = SensorId{1};
  in.seen = Harness::pids({1});
  in.need = Harness::pids({1, 3});  // sender's view lacked p2
  in.event = h.event(7);
  h.stream->on_ring(ProcessId{1}, in);
  EXPECT_EQ(h.delivered.size(), 1u);
  ASSERT_EQ(h.sent.size(), 1u);
  wire::RingPayload out = wire::decode_ring(h.sent[0].payload);
  EXPECT_EQ(out.seen, Harness::pids({1, 2}));
  EXPECT_EQ(out.need, Harness::pids({1, 2, 3}));  // ∪ our view
}

TEST(GaplessUnit, FallbackFiresOnlyWhenSeenIncompleteAndSelfInS) {
  Harness h(2, {1, 2, 3});
  h.stream->on_device_event(h.event(1));  // now seen, p2 ∈ S of our copy
  h.sent.clear();

  // Case 1: seen, S == V -> ignore.
  wire::RingPayload done;
  done.app = AppId{1};
  done.sensor = SensorId{1};
  done.seen = Harness::pids({1, 2, 3});
  done.need = Harness::pids({1, 2, 3});
  done.event = h.event(1);
  done.event.id = {SensorId{1}, 1};
  h.stream->on_ring(ProcessId{1}, done);
  EXPECT_TRUE(h.sent.empty());
  EXPECT_EQ(h.stream->rb_initiated(), 0u);

  // Case 2: seen, S != V but p2 ∉ S -> ignore (someone else's problem).
  wire::RingPayload not_ours = done;
  not_ours.seen = Harness::pids({1, 3});
  h.stream->on_ring(ProcessId{1}, not_ours);
  EXPECT_EQ(h.stream->rb_initiated(), 0u);

  // Case 3: seen, S != V and p2 ∈ S -> reliable broadcast to V ∪ view.
  wire::RingPayload stuck = done;
  stuck.seen = Harness::pids({1, 2});
  stuck.need = Harness::pids({1, 2, 3});
  h.stream->on_ring(ProcessId{1}, stuck);
  EXPECT_EQ(h.stream->rb_initiated(), 1u);
  ASSERT_EQ(h.sent.size(), 2u);  // to p1 and p3, never to self
  for (const Sent& s : h.sent) {
    EXPECT_EQ(s.type, net::MsgType::kRbEvent);
    EXPECT_NE(s.dst, ProcessId{2});
  }
}

TEST(GaplessUnit, FallbackHappensAtMostOncePerEvent) {
  Harness h(2, {1, 2, 3});
  h.stream->on_device_event(h.event(1));
  h.sent.clear();
  wire::RingPayload stuck;
  stuck.app = AppId{1};
  stuck.sensor = SensorId{1};
  stuck.seen = Harness::pids({1, 2});
  stuck.need = Harness::pids({1, 2, 3});
  stuck.event = h.event(1);
  stuck.event.id = {SensorId{1}, 1};
  h.stream->on_ring(ProcessId{1}, stuck);
  h.stream->on_ring(ProcessId{1}, stuck);
  EXPECT_EQ(h.stream->rb_initiated(), 1u);
  EXPECT_EQ(h.sent.size(), 2u);
}

TEST(GaplessUnit, RbDeliveryRefloodsOnce) {
  Harness h(2, {1, 2, 3, 4});
  wire::EventPayload p;
  p.app = AppId{1};
  p.sensor = SensorId{1};
  p.event = h.event(9);
  h.stream->on_rb(ProcessId{1}, p);
  EXPECT_EQ(h.delivered.size(), 1u);
  // Refloods to everyone except self and the origin.
  EXPECT_EQ(h.sent.size(), 2u);
  h.sent.clear();
  h.stream->on_rb(ProcessId{3}, p);  // duplicate: no delivery, no reflood
  EXPECT_EQ(h.delivered.size(), 1u);
  EXPECT_TRUE(h.sent.empty());
}

TEST(GaplessUnit, SyncSuccessorResendsMissingSuffix) {
  Harness h(2, {1, 2, 3});
  for (std::uint32_t i = 1; i <= 5; ++i) {
    h.sim.run_for(seconds(1));
    h.stream->on_device_event(h.event(i));
  }
  h.sent.clear();
  // Successor reports it has everything up to t=2s: events 3..5 re-sent.
  h.stream->sync_successor(ProcessId{3}, TimePoint{seconds(2).us});
  ASSERT_EQ(h.sent.size(), 3u);
  for (const Sent& s : h.sent) {
    EXPECT_EQ(s.dst, ProcessId{3});
    EXPECT_EQ(s.type, net::MsgType::kRingEvent);
  }
  wire::RingPayload first = wire::decode_ring(h.sent[0].payload);
  EXPECT_EQ(first.event.id.seq, 3u);
}

TEST(GaplessUnit, ViewShrinkChangesSuccessor) {
  Harness h(1, {1, 2, 3});
  h.stream->on_device_event(h.event(1));
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].dst, ProcessId{2});
  h.sent.clear();
  h.view = Harness::pids({1, 3});  // p2 died
  h.stream->on_device_event(h.event(2));
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].dst, ProcessId{3});
}

}  // namespace
}  // namespace riv::core
