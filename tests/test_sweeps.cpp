// Parameterized protocol sweeps: the paper's core quantitative claims,
// asserted as invariants across a grid of home sizes, loss rates, and
// event sizes (gtest TEST_P, one ctest case per grid point).
#include <gtest/gtest.h>

#include <cmath>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv {
namespace {

using workload::HomeDeployment;

constexpr AppId kApp{1};
constexpr SensorId kSensor{1};

appmodel::AppGraph sink(appmodel::Guarantee g) {
  appmodel::AppBuilder app(kApp, "sink");
  auto op = app.add_operator("Sink");
  op.add_sensor(kSensor, g, appmodel::WindowSpec::count_window(1));
  op.handle_triggered_window(
      [](const std::vector<appmodel::StreamWindow>&,
         appmodel::TriggerContext&) {});
  return app.build();
}

std::unique_ptr<HomeDeployment> scenario(int n, int receivers, double loss,
                                         std::uint32_t payload,
                                         appmodel::Guarantee g,
                                         std::uint64_t seed) {
  HomeDeployment::Options opt;
  opt.seed = seed;
  opt.n_processes = n;
  auto home = std::make_unique<HomeDeployment>(opt);
  devices::SensorSpec spec;
  spec.id = kSensor;
  spec.name = "s";
  spec.tech = devices::Technology::kIp;
  spec.payload_size = payload;
  spec.rate_hz = 10.0;
  std::vector<ProcessId> linked;
  for (int i = 0; i < receivers; ++i) linked.push_back(home->pid(i));
  devices::LinkParams link;
  link.loss_prob = loss;
  home->add_sensor(spec, linked, link);
  home->deploy(sink(g));
  return home;
}

// --- ring scales: n messages per event, full delivery, for any home size --

class RingSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingSizeSweep, NMessagesAndFullDeliveryAtAnyHomeSize) {
  const int n = GetParam();
  auto home = scenario(n, 1, 0.0, 4, appmodel::Guarantee::kGapless,
                       400 + static_cast<std::uint64_t>(n));
  home->start();
  home->run_for(seconds(30));
  std::uint64_t emitted = home->bus().sensor(kSensor).events_emitted();
  std::uint64_t delivered = home->metrics().counter_value("app1.delivered");
  EXPECT_GE(delivered + 2, emitted);
  if (n > 1) {
    double per_event =
        static_cast<double>(
            home->metrics().counter_value("net.msgs.ring_event")) /
        static_cast<double>(emitted);
    EXPECT_NEAR(per_event, static_cast<double>(n), 0.5 + n * 0.06);
  }
  EXPECT_EQ(home->metrics().counter_value("net.msgs.rb_event"), 0u);
}

INSTANTIATE_TEST_SUITE_P(HomeSizes, RingSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8));

// --- loss grid: Gapless tracks 1 - p^m, Gap tracks 1 - p -------------------

struct LossPoint {
  double loss;
  int receivers;
};

class LossGridSweep : public ::testing::TestWithParam<LossPoint> {};

TEST_P(LossGridSweep, DeliveryMatchesAnalyticModel) {
  const auto [loss, m] = GetParam();
  const std::uint64_t seed =
      5000 + static_cast<std::uint64_t>(loss * 100) * 10 +
      static_cast<std::uint64_t>(m);

  auto gapless =
      scenario(5, m, loss, 4, appmodel::Guarantee::kGapless, seed);
  gapless->start();
  gapless->run_for(seconds(120));
  double emitted = static_cast<double>(
      gapless->bus().sensor(kSensor).events_emitted());
  double got = static_cast<double>(
                   gapless->metrics().counter_value("app1.delivered")) /
               emitted;
  EXPECT_NEAR(got, 1.0 - std::pow(loss, m), 0.05);

  auto gap = scenario(5, m, loss, 4, appmodel::Guarantee::kGap, seed + 7);
  gap->start();
  gap->run_for(seconds(120));
  emitted =
      static_cast<double>(gap->bus().sensor(kSensor).events_emitted());
  got = static_cast<double>(gap->metrics().counter_value("app1.delivered")) /
        emitted;
  EXPECT_NEAR(got, 1.0 - loss, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LossGridSweep,
    ::testing::Values(LossPoint{0.1, 2}, LossPoint{0.1, 4},
                      LossPoint{0.3, 2}, LossPoint{0.3, 4},
                      LossPoint{0.5, 2}, LossPoint{0.5, 4},
                      LossPoint{0.5, 5}));

// --- size sweep: wire bytes scale with the payload, delivery unaffected ---

class SizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SizeSweep, BytesTrackPayloadAndDeliveryIsComplete) {
  const std::uint32_t payload = GetParam();
  auto home = scenario(4, 1, 0.0, payload, appmodel::Guarantee::kGapless,
                       6000 + payload);
  home->start();
  home->run_for(seconds(20));
  std::uint64_t emitted = home->bus().sensor(kSensor).events_emitted();
  EXPECT_GE(home->metrics().counter_value("app1.delivered") + 2, emitted);
  // Ring traffic: 4 messages per event, each >= payload bytes (a couple
  // of events may still be mid-circuit at the horizon).
  std::uint64_t bytes =
      home->metrics().counter_value("net.bytes.ring_event");
  EXPECT_GE(bytes + 8ull * payload, emitted * 4 * payload);
  // ...and not wildly more (framing + S/V metadata is bounded).
  EXPECT_LE(bytes, emitted * 4 * (payload + 128));
}

INSTANTIATE_TEST_SUITE_P(Payloads, SizeSweep,
                         ::testing::Values(4u, 8u, 64u, 1024u, 8192u,
                                           20480u));

// --- failure-detection sweep: Gap's hole matches rate x timeout ------------

class DetectionSweep : public ::testing::TestWithParam<int> {};

TEST_P(DetectionSweep, GapFailoverHoleTracksTimeout) {
  const int timeout_ms = GetParam();
  HomeDeployment::Options opt;
  opt.seed = 7000 + static_cast<std::uint64_t>(timeout_ms);
  opt.n_processes = 3;
  opt.config.membership.period = milliseconds(timeout_ms / 4);
  opt.config.membership.timeout = milliseconds(timeout_ms);
  auto home = std::make_unique<HomeDeployment>(opt);
  devices::SensorSpec spec;
  spec.id = kSensor;
  spec.name = "s";
  spec.tech = devices::Technology::kIp;
  spec.rate_hz = 10.0;
  home->add_sensor(spec, home->processes());
  home->deploy(sink(appmodel::Guarantee::kGap));
  home->start();
  home->run_for(seconds(30));
  home->active_logic_process(kApp)->crash();
  home->run_for(seconds(30));
  std::uint64_t emitted = home->bus().sensor(kSensor).events_emitted();
  std::uint64_t delivered = home->metrics().counter_value("app1.delivered");
  double hole = static_cast<double>(emitted - delivered);
  double expected = 10.0 * timeout_ms / 1000.0;  // rate x detection time
  EXPECT_NEAR(hole, expected, expected * 0.6 + 4.0);
}

INSTANTIATE_TEST_SUITE_P(Timeouts, DetectionSweep,
                         ::testing::Values(500, 1000, 2000, 4000));

}  // namespace
}  // namespace riv
