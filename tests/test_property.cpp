// Property-based tests: seeded, reproducible fault schedules checking the
// paper's core invariants across many executions. The fault schedules come
// from the chaos engine (src/chaos) — a FaultPlan is a pure function of
// its seed, the engine injects it, continuously evaluates invariants, and
// drains the home to quiescence before the exact end-state checks. Any
// failure here reproduces with
//   chaos_run --seed <seed> ... (the engine prints the knobs it used).
//
//   Gapless invariant (§4.1): every event received by at least one
//   process that stays correct is eventually delivered to an active logic
//   node, across link loss, crashes with recovery, partitions (symmetric
//   and one-directional), delay spikes, and device faults.
//
//   Gap invariant (§4.2): no logic instance is ever fed the same event
//   twice; under single-view fault mixes the home-wide delivery count
//   never exceeds the emission count.
//
//   Execution invariant (§5): after faults stop and views converge,
//   exactly one logic node is active.
#include <gtest/gtest.h>

#include <memory>

#include "chaos/engine.hpp"
#include "common/rng.hpp"
#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv {
namespace {

using workload::HomeDeployment;

constexpr AppId kApp{1};
constexpr SensorId kDoor{1};
constexpr ActuatorId kLight{1};

struct FaultCase {
  std::uint64_t seed;
  double link_loss;
  int n_processes;
  int receivers;
};

void print_case(const FaultCase& c) {
  SCOPED_TRACE(::testing::Message()
               << "seed=" << c.seed << " loss=" << c.link_loss
               << " n=" << c.n_processes << " m=" << c.receivers);
}

chaos::EngineOptions engine_options(const FaultCase& c,
                                    appmodel::Guarantee g) {
  chaos::EngineOptions opt;
  opt.scenario.seed = c.seed;
  opt.scenario.guarantee = g;
  opt.scenario.n_processes = c.n_processes;
  opt.scenario.receivers = c.receivers;
  opt.scenario.device_link_loss = c.link_loss;
  opt.plan.horizon = seconds(30);  // keeps each case well under a second
  return opt;
}

// Every violation becomes its own test failure, timestamped and tied to
// the seed via print_case — no slack, no aggregate assertion.
void expect_clean(const chaos::ChaosResult& r) {
  EXPECT_TRUE(r.quiesced) << "drain did not reach quiescence";
  for (const chaos::Violation& v : r.violations)
    ADD_FAILURE() << chaos::to_string(v);
}

class GaplessChaos : public ::testing::TestWithParam<FaultCase> {};

// Full fault mix: crashes, symmetric and asymmetric partitions, delay
// spikes, edge loss, device-link-loss ramps, device crashes.
TEST_P(GaplessChaos, EveryIngestedEventEventuallyDelivered) {
  FaultCase c = GetParam();
  print_case(c);
  chaos::ChaosEngine engine(engine_options(c, appmodel::Guarantee::kGapless));
  chaos::ChaosResult r = engine.run();
  expect_clean(r);
  // Post-ingest guarantee, exact: everything that reached at least one
  // process was delivered to an active logic node at least once.
  EXPECT_GE(r.delivered, r.ingested);
  EXPECT_GT(r.ingested, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, GaplessChaos,
    ::testing::Values(FaultCase{101, 0.0, 3, 3}, FaultCase{102, 0.1, 3, 2},
                      FaultCase{103, 0.3, 5, 3}, FaultCase{104, 0.0, 5, 5},
                      FaultCase{105, 0.5, 4, 4}, FaultCase{106, 0.2, 2, 2},
                      FaultCase{107, 0.4, 5, 2}, FaultCase{108, 0.1, 4, 1}));

class GapChaos : public ::testing::TestWithParam<FaultCase> {};

// Crash/recover + device faults only (no partitions or network
// degradation): views never split, so exactly one logic node is active at
// any instant and the home-wide delivered ≤ emitted bound is sound. The
// engine checks it continuously via the NoOverDelivery invariant on top
// of the per-instance duplicate check it always runs.
TEST_P(GapChaos, NeverDeliversMoreThanEmitted) {
  FaultCase c = GetParam();
  print_case(c);
  chaos::EngineOptions opt = engine_options(c, appmodel::Guarantee::kGap);
  opt.plan.partitions = false;
  opt.plan.asym_partitions = false;
  opt.plan.delay_spikes = false;
  opt.plan.edge_loss = false;
  chaos::ChaosEngine engine(opt);
  engine.add_invariant(std::make_unique<chaos::NoOverDelivery>());
  chaos::ChaosResult r = engine.run();
  expect_clean(r);
  EXPECT_LE(r.delivered, r.emitted);
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, GapChaos,
    ::testing::Values(FaultCase{201, 0.0, 3, 3}, FaultCase{202, 0.2, 4, 2},
                      FaultCase{203, 0.5, 5, 4}, FaultCase{204, 0.1, 2, 1},
                      FaultCase{205, 0.3, 5, 5}));

// Gap under the full fault mix, including asymmetric partitions: the
// home-wide bound no longer applies (two logic nodes can be legitimately
// active while views disagree) but the per-instance no-duplicate and
// converged single-active invariants must still hold.
TEST_P(GapChaos, NoDuplicatesUnderPartitions) {
  FaultCase c = GetParam();
  print_case(c);
  chaos::ChaosEngine engine(engine_options(c, appmodel::Guarantee::kGap));
  chaos::ChaosResult r = engine.run();
  expect_clean(r);
}

class PartitionChaos : public ::testing::TestWithParam<std::uint64_t> {};

// Direct deployment-level test (no engine): repeated random symmetric
// splits, then HomeDeployment::drain_to_quiescence and EXACT convergence
// assertions — every live log identical, delivery covers ingest, one
// active logic node.
TEST_P(PartitionChaos, GaplessConvergesAfterRepeatedPartitions) {
  const std::uint64_t seed = GetParam();
  HomeDeployment::Options opt;
  opt.seed = seed;
  opt.n_processes = 4;
  HomeDeployment home(opt);
  devices::SensorSpec spec;
  spec.id = kDoor;
  spec.name = "door";
  spec.kind = devices::SensorKind::kDoor;
  spec.tech = devices::Technology::kIp;
  spec.rate_hz = 10.0;
  devices::LinkParams link;
  link.loss_prob = 0.1;
  home.add_sensor(spec, {home.pid(0), home.pid(1)}, link);
  devices::ActuatorSpec light;
  light.id = kLight;
  light.name = "light";
  light.tech = devices::Technology::kIp;
  home.add_actuator(light, {home.pid(0)});
  home.deploy(workload::apps::turn_light_on_off(
      kApp, kDoor, kLight, appmodel::Guarantee::kGapless));
  home.start();

  Rng rng(seed ^ 0x9e3779b9);
  for (int round = 0; round < 4; ++round) {
    home.run_for(seconds(8));
    std::set<ProcessId> a, b;
    for (int i = 0; i < 4; ++i) {
      (rng.bernoulli(0.5) ? a : b).insert(home.pid(i));
    }
    if (a.empty() || b.empty()) continue;
    home.net().set_partition({a, b});
    home.run_for(seconds(8));
    home.net().heal_partition();
  }
  ASSERT_TRUE(home.drain_to_quiescence());

  std::uint64_t ingested_anywhere = 0;
  for (int i = 0; i < 4; ++i) {
    ingested_anywhere = std::max(
        ingested_anywhere,
        home.metrics().counter_value(
            "ingest.p" + std::to_string(i + 1) + ".s1"));
  }
  EXPECT_GE(home.metrics().counter_value("app1.delivered"),
            ingested_anywhere);

  // All live logs converge to exactly the same event-set size.
  std::size_t max_log = 0;
  for (int i = 0; i < 4; ++i) {
    max_log = std::max(max_log, home.process(i).event_log(kApp)->size(kDoor));
  }
  EXPECT_GT(max_log, 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(home.process(i).event_log(kApp)->size(kDoor), max_log)
        << "process " << i << " did not converge";
  }

  int actives = 0;
  for (int i = 0; i < 4; ++i) actives += home.process(i).logic_active(kApp);
  EXPECT_EQ(actives, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionChaos,
                         ::testing::Values(301, 302, 303, 304, 305, 306));

}  // namespace
}  // namespace riv
