// Property-based tests: randomized fault schedules (seeded, reproducible)
// checking the paper's core invariants across many executions.
//
//   Gapless invariant (§4.1): every event received by at least one
//   process that stays correct is eventually delivered to an active logic
//   node, across arbitrary link loss, process crashes with recovery, and
//   healed partitions.
//
//   Gap invariant (§4.2): delivery count never exceeds emission count
//   (no duplicates to the app), no matter the fault schedule.
//
//   Execution invariant (§5): after faults stop and views converge,
//   exactly one logic node is active.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv {
namespace {

using workload::HomeDeployment;

constexpr AppId kApp{1};
constexpr SensorId kDoor{1};
constexpr ActuatorId kLight{1};

struct FaultCase {
  std::uint64_t seed;
  double link_loss;
  int n_processes;
  int receivers;
};

void print_case(const FaultCase& c) {
  SCOPED_TRACE(::testing::Message()
               << "seed=" << c.seed << " loss=" << c.link_loss
               << " n=" << c.n_processes << " m=" << c.receivers);
}

std::unique_ptr<HomeDeployment> build(const FaultCase& c,
                                      appmodel::Guarantee g) {
  HomeDeployment::Options opt;
  opt.seed = c.seed;
  opt.n_processes = c.n_processes;
  auto home = std::make_unique<HomeDeployment>(opt);
  devices::SensorSpec spec;
  spec.id = kDoor;
  spec.name = "door";
  spec.kind = devices::SensorKind::kDoor;
  spec.tech = devices::Technology::kIp;
  spec.rate_hz = 10.0;
  std::vector<ProcessId> linked;
  for (int i = 0; i < c.receivers && i < c.n_processes; ++i)
    linked.push_back(home->pid(i));
  devices::LinkParams link;
  link.loss_prob = c.link_loss;
  home->add_sensor(spec, linked, link);
  devices::ActuatorSpec light;
  light.id = kLight;
  light.name = "light";
  light.tech = devices::Technology::kIp;
  home->add_actuator(light, {home->pid(0)});
  home->deploy(workload::apps::turn_light_on_off(kApp, kDoor, kLight, g));
  return home;
}

// Random crash/recover chaos for `duration`, never crashing more than
// (n - 1) processes at once so at least one correct process exists.
void run_chaos(HomeDeployment& home, Rng& rng, Duration duration,
               Duration step) {
  const int n = static_cast<int>(home.processes().size());
  TimePoint end = home.sim().now() + duration;
  while (home.sim().now() < end) {
    home.run_for(step);
    int up = 0;
    for (int i = 0; i < n; ++i) up += home.process(i).up();
    int victim = static_cast<int>(rng.uniform_int(n));
    core::RivuletProcess& p = home.process(victim);
    if (p.up() && up > 1 && rng.bernoulli(0.5)) {
      p.crash();
    } else if (!p.up() && rng.bernoulli(0.7)) {
      p.recover();
    }
  }
  // Quiesce: recover everyone and let views converge.
  for (int i = 0; i < n; ++i) {
    if (!home.process(i).up()) home.process(i).recover();
  }
  home.run_for(seconds(10));
}

class GaplessChaos : public ::testing::TestWithParam<FaultCase> {};

TEST_P(GaplessChaos, EveryIngestedEventEventuallyDelivered) {
  FaultCase c = GetParam();
  print_case(c);
  auto home = build(c, appmodel::Guarantee::kGapless);
  home->start();
  Rng chaos(c.seed ^ 0xfeedface);
  run_chaos(*home, chaos, seconds(60), seconds(3));
  home->run_for(seconds(15));  // drain

  // Post-ingest guarantee: everything that reached at least one process
  // must be in every live process's log and have been delivered at least
  // once to an active logic node.
  std::uint64_t ingested_anywhere = 0;
  for (int i = 0; i < c.n_processes; ++i) {
    ingested_anywhere = std::max(
        ingested_anywhere,
        home->metrics().counter_value(
            "ingest.p" + std::to_string(i + 1) + ".s1"));
  }
  std::uint64_t delivered =
      home->metrics().counter_value("app1.delivered");
  EXPECT_GE(delivered + 5, ingested_anywhere);

  // All live logs converge to the same event set size.
  std::size_t max_log = 0;
  for (int i = 0; i < c.n_processes; ++i) {
    max_log = std::max(max_log,
                       home->process(i).event_log(kApp)->size(kDoor));
  }
  for (int i = 0; i < c.n_processes; ++i) {
    EXPECT_GE(home->process(i).event_log(kApp)->size(kDoor) + 5, max_log)
        << "process " << i << " did not converge";
  }

  // Exactly one active logic node after quiescence.
  int actives = 0;
  for (int i = 0; i < c.n_processes; ++i)
    actives += home->process(i).logic_active(kApp);
  EXPECT_EQ(actives, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, GaplessChaos,
    ::testing::Values(FaultCase{101, 0.0, 3, 3}, FaultCase{102, 0.1, 3, 2},
                      FaultCase{103, 0.3, 5, 3}, FaultCase{104, 0.0, 5, 5},
                      FaultCase{105, 0.5, 4, 4}, FaultCase{106, 0.2, 2, 2},
                      FaultCase{107, 0.4, 5, 2}, FaultCase{108, 0.1, 4, 1}));

class GapChaos : public ::testing::TestWithParam<FaultCase> {};

TEST_P(GapChaos, NeverDeliversMoreThanEmitted) {
  FaultCase c = GetParam();
  print_case(c);
  auto home = build(c, appmodel::Guarantee::kGap);
  home->start();
  Rng chaos(c.seed ^ 0xabad1dea);
  run_chaos(*home, chaos, seconds(60), seconds(3));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  std::uint64_t delivered =
      home->metrics().counter_value("app1.delivered");
  EXPECT_LE(delivered, emitted);
  int actives = 0;
  for (int i = 0; i < c.n_processes; ++i)
    actives += home->process(i).logic_active(kApp);
  EXPECT_EQ(actives, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, GapChaos,
    ::testing::Values(FaultCase{201, 0.0, 3, 3}, FaultCase{202, 0.2, 4, 2},
                      FaultCase{203, 0.5, 5, 4}, FaultCase{204, 0.1, 2, 1},
                      FaultCase{205, 0.3, 5, 5}));

class PartitionChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionChaos, GaplessConvergesAfterRepeatedPartitions) {
  const std::uint64_t seed = GetParam();
  FaultCase c{seed, 0.1, 4, 2};
  auto home = build(c, appmodel::Guarantee::kGapless);
  home->start();
  Rng rng(seed ^ 0x9e3779b9);
  for (int round = 0; round < 4; ++round) {
    home->run_for(seconds(8));
    // Random two-way split.
    std::set<ProcessId> a, b;
    for (int i = 0; i < 4; ++i) {
      (rng.bernoulli(0.5) ? a : b).insert(home->pid(i));
    }
    if (a.empty() || b.empty()) continue;
    home->net().set_partition({a, b});
    home->run_for(seconds(8));
    home->net().heal_partition();
  }
  home->run_for(seconds(15));

  std::uint64_t ingested_anywhere = 0;
  for (int i = 0; i < 4; ++i) {
    ingested_anywhere = std::max(
        ingested_anywhere,
        home->metrics().counter_value(
            "ingest.p" + std::to_string(i + 1) + ".s1"));
  }
  EXPECT_GE(home->metrics().counter_value("app1.delivered") + 5,
            ingested_anywhere);
  int actives = 0;
  for (int i = 0; i < 4; ++i)
    actives += home->process(i).logic_active(kApp);
  EXPECT_EQ(actives, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionChaos,
                         ::testing::Values(301, 302, 303, 304, 305, 306));

}  // namespace
}  // namespace riv
