// Unit tests for the simulated WiFi network: delivery, FIFO ordering,
// crash and partition loss semantics, asymmetric (one-directional) severs
// and per-edge delay/loss overrides, latency model, byte accounting.
#include <gtest/gtest.h>

#include "net/sim_network.hpp"

namespace riv::net {
namespace {

struct NetFixture : ::testing::Test {
  NetFixture() : sim(7), net(sim, metrics) {}

  std::vector<std::byte> payload(std::size_t n) {
    return std::vector<std::byte>(n);
  }

  sim::Simulation sim;
  metrics::Registry metrics;
  SimNetwork net;
};

TEST_F(NetFixture, DeliversToHandler) {
  ProcessId a{1}, b{2};
  std::vector<Message> got;
  net.endpoint(b).set_handler([&](const Message& m) { got.push_back(m); });
  net.endpoint(a).send(b, MsgType::kGapForward, payload(10));
  sim.run_all();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].src, a);
  EXPECT_EQ(got[0].dst, b);
  EXPECT_EQ(got[0].type, MsgType::kGapForward);
  EXPECT_EQ(got[0].payload.size(), 10u);
}

TEST_F(NetFixture, PerPairFifoEvenWithJitter) {
  ProcessId a{1}, b{2};
  std::vector<int> order;
  net.endpoint(b).set_handler([&](const Message& m) {
    order.push_back(static_cast<int>(m.payload.size()));
  });
  for (int i = 1; i <= 50; ++i)
    net.endpoint(a).send(b, MsgType::kGapForward, payload(i));
  sim.run_all();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 1; i <= 50; ++i) EXPECT_EQ(order[i - 1], i);
}

TEST_F(NetFixture, LatencyGrowsWithSize) {
  ProcessId a{1}, b{2};
  TimePoint small_at{}, large_at{};
  net.endpoint(b).set_handler([&](const Message& m) {
    if (m.payload.size() < 100)
      small_at = sim.now();
    else
      large_at = sim.now();
  });
  net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
  sim.run_all();
  TimePoint t0 = small_at;
  net.endpoint(a).send(b, MsgType::kGapForward, payload(20000));
  sim.run_all();
  Duration small_delay = t0 - TimePoint{};
  Duration large_delay = large_at - t0;
  EXPECT_GT(large_delay.us, small_delay.us + 2000);  // >2 ms extra for 20 KB
}

TEST_F(NetFixture, DownReceiverLosesFrames) {
  ProcessId a{1}, b{2};
  int got = 0;
  net.endpoint(b).set_handler([&](const Message&) { ++got; });
  net.set_process_up(b, false);
  net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
  sim.run_all();
  EXPECT_EQ(got, 0);
}

TEST_F(NetFixture, CrashWhileInFlightLosesFrame) {
  ProcessId a{1}, b{2};
  int got = 0;
  net.endpoint(b).set_handler([&](const Message&) { ++got; });
  net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
  net.set_process_up(b, false);  // crash before the frame lands
  sim.run_all();
  EXPECT_EQ(got, 0);
}

TEST_F(NetFixture, PartitionBlocksAcrossGroupsOnly) {
  ProcessId a{1}, b{2}, c{3};
  int got_b = 0, got_c = 0;
  net.endpoint(b).set_handler([&](const Message&) { ++got_b; });
  net.endpoint(c).set_handler([&](const Message&) { ++got_c; });
  net.set_partition({{a, b}, {c}});
  net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
  net.endpoint(a).send(c, MsgType::kGapForward, payload(4));
  sim.run_all();
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_c, 0);
  EXPECT_FALSE(net.connected(a, c));
  EXPECT_TRUE(net.connected(a, b));
}

TEST_F(NetFixture, HealRestoresConnectivity) {
  ProcessId a{1}, c{3};
  int got = 0;
  net.endpoint(c).set_handler([&](const Message&) { ++got; });
  net.set_partition({{a}, {c}});
  net.endpoint(a).send(c, MsgType::kGapForward, payload(4));
  sim.run_all();
  EXPECT_EQ(got, 0);
  net.heal_partition();
  net.endpoint(a).send(c, MsgType::kGapForward, payload(4));
  sim.run_all();
  EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, UnmentionedProcessIsIsolatedDuringPartition) {
  ProcessId a{1}, d{4};
  net.endpoint(a);
  net.endpoint(d);
  net.set_partition({{a}});
  EXPECT_FALSE(net.connected(a, d));
  EXPECT_TRUE(net.connected(d, d));
}

TEST_F(NetFixture, ByteAccountingCountsHeaderAndPayload) {
  ProcessId a{1}, b{2};
  net.endpoint(b).set_handler([](const Message&) {});
  net.endpoint(a).send(b, MsgType::kRingEvent, payload(100));
  sim.run_all();
  EXPECT_EQ(metrics.counter_value("net.msgs.ring_event"), 1u);
  EXPECT_EQ(metrics.counter_value("net.bytes.ring_event"),
            100u + kHeaderBytes);
}

TEST_F(NetFixture, ByteAccountingSkipsPartitionedSends) {
  ProcessId a{1}, c{3};
  net.set_partition({{a}, {c}});
  net.endpoint(a).send(c, MsgType::kRingEvent, payload(100));
  sim.run_all();
  EXPECT_EQ(metrics.counter_value("net.msgs.ring_event"), 0u);
}

TEST_F(NetFixture, CongestionTermGrowsWithProcessCount) {
  // Delay from a to b with 2 live processes vs 6 live processes.
  ProcessId a{1}, b{2};
  TimePoint first{}, second{};
  net.endpoint(b).set_handler([&](const Message&) {
    if (first == TimePoint{})
      first = sim.now();
    else
      second = sim.now();
  });
  net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
  sim.run_all();
  for (std::uint16_t i = 3; i <= 6; ++i) net.endpoint(ProcessId{i});
  TimePoint t1 = sim.now();
  net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
  sim.run_all();
  Duration d1 = first - TimePoint{};
  Duration d2 = second - t1;
  EXPECT_GT(d2.us, d1.us);  // more processes, more keep-alive congestion
}

TEST_F(NetFixture, AsymmetricSeverBlocksOneDirectionOnly) {
  ProcessId a{1}, b{2};
  int got_a = 0, got_b = 0;
  net.endpoint(a).set_handler([&](const Message&) { ++got_a; });
  net.endpoint(b).set_handler([&](const Message&) { ++got_b; });
  net.set_reachable(a, b, false);  // a -> b severed; b -> a still works
  EXPECT_FALSE(net.reachable(a, b));
  EXPECT_TRUE(net.reachable(b, a));
  EXPECT_TRUE(net.connected(a, b));  // symmetric layer is untouched
  net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
  net.endpoint(b).send(a, MsgType::kGapForward, payload(4));
  sim.run_all();
  EXPECT_EQ(got_b, 0);
  EXPECT_EQ(got_a, 1);
}

TEST_F(NetFixture, AsymmetricSeverRestores) {
  ProcessId a{1}, b{2};
  int got = 0;
  net.endpoint(b).set_handler([&](const Message&) { ++got; });
  net.set_reachable(a, b, false);
  net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
  sim.run_all();
  EXPECT_EQ(got, 0);
  net.set_reachable(a, b, true);
  net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
  sim.run_all();
  EXPECT_EQ(got, 1);
}

TEST_F(NetFixture, AsymmetricSeverWhileInFlightDropsAtDelivery) {
  ProcessId a{1}, b{2};
  int got = 0;
  net.endpoint(b).set_handler([&](const Message&) { ++got; });
  net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
  net.set_reachable(a, b, false);  // severed before the frame lands
  sim.run_all();
  EXPECT_EQ(got, 0);
}

TEST_F(NetFixture, AsymmetricLayersUnderGroupPartition) {
  // Directed severs compose with symmetric partitions: healing the
  // partition does not resurrect a severed directed edge, and clearing
  // the sever does not punch through a partition.
  ProcessId a{1}, b{2};
  net.endpoint(a);
  net.endpoint(b);
  net.set_reachable(a, b, false);
  net.set_partition({{a}, {b}});
  EXPECT_FALSE(net.reachable(a, b));
  EXPECT_FALSE(net.reachable(b, a));
  net.heal_partition();
  EXPECT_FALSE(net.reachable(a, b));
  EXPECT_TRUE(net.reachable(b, a));
  net.set_partition({{a}, {b}});
  net.clear_reachable_overrides();
  EXPECT_FALSE(net.reachable(a, b));  // partition still in force
  net.heal_partition();
  EXPECT_TRUE(net.reachable(a, b));
}

TEST_F(NetFixture, EdgeDelayAddsDirectedExtraLatency) {
  ProcessId a{1}, b{2};
  TimePoint ab{}, ba{};
  net.endpoint(a).set_handler([&](const Message&) { ba = sim.now(); });
  net.endpoint(b).set_handler([&](const Message&) { ab = sim.now(); });
  net.set_edge_delay(a, b, milliseconds(200));
  TimePoint t0 = sim.now();
  net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
  net.endpoint(b).send(a, MsgType::kGapForward, payload(4));
  sim.run_all();
  EXPECT_GE((ab - t0).us, milliseconds(200).us);  // spiked direction
  EXPECT_LT((ba - t0).us, milliseconds(200).us);  // reverse unaffected
  net.clear_edge_overrides();
  TimePoint t1 = sim.now();
  net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
  sim.run_all();
  EXPECT_LT((ab - t1).us, milliseconds(200).us);
}

TEST_F(NetFixture, EdgeLossDropsDirectedFrames) {
  ProcessId a{1}, b{2};
  int got_b = 0, got_a = 0;
  net.endpoint(a).set_handler([&](const Message&) { ++got_a; });
  net.endpoint(b).set_handler([&](const Message&) { ++got_b; });
  net.set_edge_loss(a, b, 1.0);  // certain loss a -> b
  for (int i = 0; i < 20; ++i) {
    net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
    net.endpoint(b).send(a, MsgType::kGapForward, payload(4));
  }
  sim.run_all();
  EXPECT_EQ(got_b, 0);
  EXPECT_EQ(got_a, 20);
  net.set_edge_loss(a, b, 0.0);
  net.endpoint(a).send(b, MsgType::kGapForward, payload(4));
  sim.run_all();
  EXPECT_EQ(got_b, 1);
}

TEST(WifiModel, DeterministicGivenSeed) {
  for (int run = 0; run < 2; ++run) {
    static TimePoint reference{};
    sim::Simulation sim(99);
    metrics::Registry metrics;
    SimNetwork net(sim, metrics);
    TimePoint arrival{};
    net.endpoint(ProcessId{2}).set_handler([&](const Message&) {
      arrival = sim.now();
    });
    net.endpoint(ProcessId{1}).send(ProcessId{2}, MsgType::kGapForward,
                                    std::vector<std::byte>(8));
    sim.run_all();
    if (run == 0)
      reference = arrival;
    else
      EXPECT_EQ(arrival, reference);
  }
}

}  // namespace
}  // namespace riv::net
