// Tests of coordinated polling (§4.1/§8.5): one poll per epoch in the
// failure-free case, slot takeover after poller crashes, staleness
// exceptions for empty epochs, Gap single-poller optimality.
#include <gtest/gtest.h>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv {
namespace {

using workload::HomeDeployment;

constexpr AppId kApp{1};
constexpr SensorId kTemp{1};
constexpr ActuatorId kHvac{1};

devices::SensorSpec temp_poll_sensor(Duration poll_latency) {
  devices::SensorSpec spec;
  spec.id = kTemp;
  spec.name = "temperature";
  spec.kind = devices::SensorKind::kTemperature;
  spec.tech = devices::Technology::kZWave;
  spec.push = false;
  spec.payload_size = 4;
  spec.poll_latency = poll_latency;
  spec.poll_jitter = 0.1;
  spec.value_base = 22.0;
  spec.value_amplitude = 1.0;
  return spec;
}

devices::ActuatorSpec hvac_actuator() {
  devices::ActuatorSpec spec;
  spec.id = kHvac;
  spec.name = "hvac";
  spec.tech = devices::Technology::kIp;
  return spec;
}

std::unique_ptr<HomeDeployment> make_home(int n, int receivers,
                                          Duration epoch,
                                          Duration poll_latency,
                                          appmodel::Guarantee g,
                                          std::uint64_t seed = 41) {
  HomeDeployment::Options opt;
  opt.seed = seed;
  opt.n_processes = n;
  auto home = std::make_unique<HomeDeployment>(opt);
  std::vector<ProcessId> linked;
  for (int i = 0; i < receivers; ++i) linked.push_back(home->pid(i));
  home->add_sensor(temp_poll_sensor(poll_latency), linked);
  home->add_actuator(hvac_actuator(), {home->pid(0)});
  if (g == appmodel::Guarantee::kGapless) {
    home->deploy(workload::apps::temperature_hvac(kApp, kTemp, kHvac, epoch,
                                                  18.0, 25.0));
  } else {
    // A Gap variant of the same app.
    appmodel::AppBuilder app(kApp, "temperature-hvac-gap");
    auto op = app.add_operator("Thermostat");
    op.add_sensor(kTemp, appmodel::Guarantee::kGap,
                  appmodel::WindowSpec::count_window(1),
                  appmodel::PollingPolicy{epoch});
    op.add_actuator(kHvac, appmodel::Guarantee::kGap);
    op.handle_triggered_window(
        [](const std::vector<appmodel::StreamWindow>&,
           appmodel::TriggerContext&) {});
    home->deploy(app.build());
  }
  return home;
}

TEST(CoordinatedPolling, OnePollPerEpochFailureFree) {
  auto home = make_home(3, 3, seconds(10), milliseconds(500),
                        appmodel::Guarantee::kGapless);
  home->start();
  home->run_for(seconds(100));
  const devices::Sensor& s = home->bus().sensor(kTemp);
  // ~10 epochs: close to one poll each (§4.1's coordinated schedule).
  EXPECT_GE(s.polls_received(), 8u);
  EXPECT_LE(s.polls_received(), 13u);
  EXPECT_LE(s.polls_dropped(), 1u);
}

TEST(CoordinatedPolling, AppReceivesOneEventPerEpoch) {
  auto home = make_home(3, 3, seconds(10), milliseconds(500),
                        appmodel::Guarantee::kGapless);
  home->start();
  home->run_for(seconds(100));
  core::RivuletProcess* active = home->active_logic_process(kApp);
  ASSERT_NE(active, nullptr);
  EXPECT_GE(active->delivered(kApp), 8u);
  EXPECT_LE(active->delivered(kApp), 12u);
  EXPECT_EQ(home->metrics().counter_value("app1.staleness"), 0u);
}

TEST(CoordinatedPolling, PollerCrashHandledBySlotRotation) {
  auto home = make_home(3, 3, seconds(10), milliseconds(500),
                        appmodel::Guarantee::kGapless);
  home->start();
  home->run_for(seconds(50));
  std::uint64_t before =
      home->active_logic_process(kApp)->delivered(kApp);
  // Crash the first slot owner (lowest-id in-range process polls first).
  home->process(0).crash();
  home->run_for(seconds(50));
  core::RivuletProcess* active = home->active_logic_process(kApp);
  ASSERT_NE(active, nullptr);
  // Polling continued: roughly one event per epoch still flows.
  EXPECT_GE(active->delivered(kApp) + before, 8u);
  const devices::Sensor& s = home->bus().sensor(kTemp);
  EXPECT_GE(s.polls_served(), 8u);
}

TEST(CoordinatedPolling, CrashedSensorRaisesStalenessExceptions) {
  auto home = make_home(3, 3, seconds(10), milliseconds(500),
                        appmodel::Guarantee::kGapless);
  home->start();
  home->run_for(seconds(30));
  home->bus().sensor(kTemp).crash();
  home->run_for(seconds(50));
  // §4.1: Rivulet detects empty epochs for poll-based sensors and throws.
  EXPECT_GE(home->metrics().counter_value("app1.staleness"), 3u);
}

TEST(CoordinatedPolling, SensorRecoveryStopsStaleness) {
  auto home = make_home(3, 3, seconds(10), milliseconds(500),
                        appmodel::Guarantee::kGapless);
  home->start();
  home->run_for(seconds(20));
  home->bus().sensor(kTemp).crash();
  home->run_for(seconds(30));
  home->bus().sensor(kTemp).recover();
  home->run_for(seconds(10));
  std::uint64_t staleness = home->metrics().counter_value("app1.staleness");
  home->run_for(seconds(40));
  EXPECT_EQ(home->metrics().counter_value("app1.staleness"), staleness);
}

TEST(GapPolling, SingleForwarderPollsOptimally) {
  auto home = make_home(3, 3, seconds(10), milliseconds(500),
                        appmodel::Guarantee::kGap);
  home->start();
  home->run_for(seconds(100));
  const devices::Sensor& s = home->bus().sensor(kTemp);
  // §4.2/Fig 8: Gap polling is optimal — exactly one poll per epoch.
  EXPECT_GE(s.polls_received(), 9u);
  EXPECT_LE(s.polls_received(), 11u);
  EXPECT_EQ(s.polls_dropped(), 0u);
}

TEST(GapPolling, PollerFailoverResumesPolling) {
  auto home = make_home(3, 3, seconds(10), milliseconds(500),
                        appmodel::Guarantee::kGap);
  home->start();
  home->run_for(seconds(40));
  std::uint64_t before = home->bus().sensor(kTemp).polls_received();
  EXPECT_GT(before, 0u);
  home->process(0).crash();  // app-bearing process == poller
  home->run_for(seconds(50));
  EXPECT_GT(home->bus().sensor(kTemp).polls_received(), before + 2);
}

TEST(CoordinatedPolling, TwoStreamsDifferentEpochsCoexist) {
  HomeDeployment::Options opt;
  opt.seed = 43;
  opt.n_processes = 3;
  HomeDeployment home(opt);
  devices::SensorSpec t1 = temp_poll_sensor(milliseconds(500));
  devices::SensorSpec t2 = temp_poll_sensor(milliseconds(400));
  t2.id = SensorId{2};
  t2.name = "humidity";
  t2.kind = devices::SensorKind::kHumidity;
  home.add_sensor(t1, home.processes());
  home.add_sensor(t2, home.processes());
  home.add_actuator(hvac_actuator(), {home.pid(0)});

  appmodel::AppBuilder app(kApp, "dual-poll");
  auto op = app.add_operator("Monitor",
                             std::make_unique<appmodel::FTCombiner>(1));
  op.add_sensor(SensorId{1}, appmodel::Guarantee::kGapless,
                appmodel::WindowSpec::count_window(1),
                appmodel::PollingPolicy{seconds(10)});
  op.add_sensor(SensorId{2}, appmodel::Guarantee::kGapless,
                appmodel::WindowSpec::count_window(1),
                appmodel::PollingPolicy{seconds(5)});
  op.handle_triggered_window(
      [](const std::vector<appmodel::StreamWindow>&,
         appmodel::TriggerContext&) {});
  home.deploy(app.build());
  home.start();
  home.run_for(seconds(100));
  // ~10 polls for the 10 s epoch stream, ~20 for the 5 s epoch stream.
  EXPECT_NEAR(home.bus().sensor(SensorId{1}).polls_served(), 10.0, 3.0);
  EXPECT_NEAR(home.bus().sensor(SensorId{2}).polls_served(), 20.0, 4.0);
}

}  // namespace
}  // namespace riv
