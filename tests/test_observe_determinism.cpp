// Tier-2 observatory acceptance gate: a 100k-home fleet run with 0.1%
// sampled flight recording, SLO health scoring, and a correlated campaign
// must produce the same sampled-home set, per-home trace FNV hashes,
// top-K health list, and fleet fault digest under --jobs 1 and --jobs 8
// (the ISSUE 9 acceptance criterion, pinned at full scale; test_observe
// carries the fast 96-home version in tier 1).
#include <gtest/gtest.h>

#include <cstdint>

#include "fleet/campaign.hpp"
#include "fleet/fleet.hpp"
#include "fleet/observe.hpp"

namespace riv::fleet {
namespace {

FleetOptions acceptance_fleet(int jobs) {
  FleetOptions opt;
  opt.seed = 1;
  opt.homes = 100'000;
  opt.jobs = jobs;
  // Short steady-state window: the gate is about fold determinism at
  // fleet scale, not per-home dynamics, and 100k homes x 2 runs must fit
  // the tier-2 budget.
  opt.population.sim_duration = seconds(2);
  CampaignEvent wifi;
  wifi.kind = CampaignFault::kWifiOutage;
  wifi.at = milliseconds(500);
  wifi.duration = seconds(1);
  wifi.fraction = 0.05;
  opt.campaign.events.push_back(wifi);
  opt.observe.sample = 0.001;  // ~100 flight-recorded homes
  opt.observe.top_k = 16;
  return opt;
}

TEST(ObservedFleetDeterminism, HundredThousandHomesJobsInvariant) {
  FleetResult serial = run_fleet(acceptance_fleet(1));
  FleetResult threaded = run_fleet(acceptance_fleet(8));

  // ~100 sampled homes at 0.1% (Bernoulli over 100k concentrates; the
  // exact set is pinned by the sampler's purity, not by luck).
  ASSERT_GT(serial.observation.samples.size(), 50u);
  ASSERT_LT(serial.observation.samples.size(), 200u);

  EXPECT_EQ(serial.fault_digest, threaded.fault_digest);
  EXPECT_EQ(registry_fingerprint(serial.merged),
            registry_fingerprint(threaded.merged));

  // Sampled set + per-home trace hashes, in one comparison each way.
  EXPECT_EQ(serial.observation.samples, threaded.observation.samples);
  EXPECT_EQ(serial.observation.trace_digest(),
            threaded.observation.trace_digest());

  // Leg histograms folded from the sampled traces.
  for (int s = 1; s < trace::kStageCount; ++s)
    EXPECT_EQ(serial.observation.leg[s].buckets(),
              threaded.observation.leg[s].buckets())
        << "leg " << s;
  EXPECT_EQ(serial.observation.e2e_delivery.buckets(),
            threaded.observation.e2e_delivery.buckets());

  // The worst-offenders list survives the shard merge bit-for-bit.
  ASSERT_EQ(serial.observation.top.rows().size(), 16u);
  EXPECT_EQ(serial.observation.top.rows(), threaded.observation.top.rows());

  // And a triage replay of the very worst home reproduces whatever the
  // sampler would have recorded for it.
  const HomeHealth& worst = serial.observation.top.rows().front();
  TriageReport rep = triage_home(acceptance_fleet(1), worst.index);
  EXPECT_GT(rep.trace_records, 0u);
  EXPECT_EQ(rep.health.delay_p99_us, worst.delay_p99_us);
}

}  // namespace
}  // namespace riv::fleet
