// Checkpoint/fork & time-travel replay, proven correct by differential
// testing.
//
// The correctness contract is "restored ≡ uninterrupted, byte-for-byte,
// traces and hashes included", and every test here is a differential:
//
//   * each blessed golden scenario is run with a mid-run checkpoint, the
//     checkpoint is restored in a forked fresh process, and the restored
//     run's complete trace must be byte-identical to the blessed golden
//     file (same FNV-1a footer);
//   * fork-per-seed chaos sweeps must produce, per seed, exactly the
//     fault trace a from-scratch run of that seed produces;
//   * capture must be a pure function of logical state, pinned against
//     the known sources of incidental divergence (StableStore hash-map
//     iteration, timer cancel order, chunked-vs-monolithic runs).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/engine.hpp"
#include "checkpoint/fork.hpp"
#include "checkpoint/rivc.hpp"
#include "checkpoint/scenario.hpp"
#include "sim/simulation.hpp"
#include "sim/stable_store.hpp"
#include "trace/trace.hpp"
#include "workload/deployment.hpp"

#ifndef RIV_TRACE_GOLDEN_DIR
#error "RIV_TRACE_GOLDEN_DIR must point at tests/trace_golden"
#endif

namespace riv {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(RIV_TRACE_GOLDEN_DIR) + "/" + name + ".rivtrace";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Checkpoint halfway through the interesting part of each scenario: past
// the failover crash at 3s for the home runs, mid-plan for chaos.
TimePoint mid_time(const std::string& name) {
  return TimePoint{} + (name == "chaos_flight" ? seconds(6) : seconds(4));
}

std::string chaos_fingerprint(const chaos::ChaosResult& r) {
  return r.trace_digest + " violations=" + std::to_string(r.violations.size()) +
         " faults=" + std::to_string(r.faults_injected) +
         " noop=" + std::to_string(r.faults_noop) +
         " attacks=" + std::to_string(r.byzantine_attacks) +
         " delivered=" + std::to_string(r.delivered) +
         " quiesced=" + (r.quiesced ? "1" : "0");
}

// One golden scenario end-to-end: checkpoint mid-run, prove the
// checkpoint changed nothing, then restore from the file in a forked
// fresh process and prove the restored run reproduces the blessed golden
// byte-for-byte.
void check_golden_scenario(const std::string& name) {
  SCOPED_TRACE(name);
  trace::Recorder golden;
  std::string err;
  ASSERT_TRUE(trace::Recorder::load(golden_path(name), &golden, &err)) << err;
  const std::uint64_t golden_hash = golden.hash();
  const std::size_t golden_records = golden.size();

  // --- checkpointed run: capture mid-run, then keep going ---------------
  std::unique_ptr<checkpoint::Scenario> sc =
      checkpoint::make_golden_scenario(name);
  ASSERT_NE(sc, nullptr);
  sc->start();
  sc->run_to(mid_time(name));
  checkpoint::Snapshot snap = sc->capture();
  EXPECT_EQ(snap.at, mid_time(name));
  EXPECT_FALSE(snap.sections.empty());

  const std::string rivc_path =
      ::testing::TempDir() + "ckpt_" + name + ".rivc";
  ASSERT_TRUE(checkpoint::save(snap, rivc_path, &err)) << err;

  sc->run_to(sc->end_time());
  sc->finish();
  // Capturing a checkpoint must be invisible: the interrupted run's full
  // trace still matches the blessed golden exactly.
  EXPECT_EQ(sc->recorder()->hash(), golden_hash);
  EXPECT_EQ(sc->recorder()->size(), golden_records);

  // --- restore in a fresh process ---------------------------------------
  if (!checkpoint::fork_supported()) return;
  const std::string trace_path = rivc_path + ".trace";
  checkpoint::ForkResult child =
      checkpoint::fork_run([&rivc_path, &trace_path]() -> std::string {
        checkpoint::Snapshot loaded;
        std::string cerr;
        if (!checkpoint::load(rivc_path, &loaded, &cerr))
          return "load failed: " + cerr;
        checkpoint::RestoreReport rep = checkpoint::restore(loaded);
        if (!rep.ok) return "restore failed: " + rep.error;
        rep.scenario->run_to(rep.scenario->end_time());
        rep.scenario->finish();
        std::shared_ptr<trace::Recorder> rec = rep.scenario->recorder();
        if (!rec->save(trace_path, &cerr)) return "save failed: " + cerr;
        return "hash=" + rec->digest() +
               " records=" + std::to_string(rec->size());
      });
  ASSERT_TRUE(child.ok) << child.payload;
  EXPECT_EQ(child.payload,
            "hash=" + golden.digest() +
                " records=" + std::to_string(golden_records));
  // The restored run's saved trace is byte-identical to the blessed
  // golden file — identical records, chunking, and FNV-1a footer.
  const std::string restored_bytes = read_file(trace_path);
  ASSERT_FALSE(restored_bytes.empty());
  EXPECT_EQ(restored_bytes, read_file(golden_path(name)))
      << "restored trace file differs from blessed golden";
  std::remove(rivc_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(CheckpointGolden, GaplessRing) { check_golden_scenario("gapless_ring"); }
TEST(CheckpointGolden, GapChain) { check_golden_scenario("gap_chain"); }
TEST(CheckpointGolden, Failover) { check_golden_scenario("failover"); }
TEST(CheckpointGolden, ChaosFlight) { check_golden_scenario("chaos_flight"); }

// A tampered checkpoint must fail the restore attestation with the exact
// divergent section named — the negative control for the equivalences
// above (if this passed, the byte-compares would be vacuous).
TEST(CheckpointGolden, TamperedSectionFailsAttestation) {
  std::unique_ptr<checkpoint::Scenario> sc =
      checkpoint::make_golden_scenario("gapless_ring");
  sc->start();
  sc->run_to(mid_time("gapless_ring"));
  checkpoint::Snapshot snap = sc->capture();
  checkpoint::Section* target = nullptr;
  for (checkpoint::Section& s : snap.sections)
    if (s.name == "proc.1") target = &s;
  ASSERT_NE(target, nullptr);
  ASSERT_FALSE(target->payload.empty());
  target->payload[3] ^= std::byte{0x40};

  checkpoint::RestoreReport rep = checkpoint::restore(snap);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("restore attestation failed"), std::string::npos)
      << rep.error;
  EXPECT_NE(rep.error.find("proc.1"), std::string::npos) << rep.error;
}

// fork-per-seed ≡ fresh-per-seed: N seeds run as forked children off one
// shared warm-up must produce exactly the fault traces and outcomes of N
// independent from-scratch runs arming the same plans at the same time.
TEST(CheckpointFork, ForkPerSeedMatchesFreshRuns) {
  if (!checkpoint::fork_supported()) GTEST_SKIP() << "no fork(2)";
  const Duration warmup = seconds(2);
  const std::vector<std::uint64_t> seeds = {101, 202, 303};
  auto make_options = [] {
    chaos::EngineOptions opt;
    opt.scenario.seed = 11;
    opt.scenario.n_processes = 3;
    opt.plan.horizon = seconds(8);
    opt.defer_plan = true;
    return opt;
  };

  std::vector<std::string> fresh;
  for (std::uint64_t seed : seeds) {
    chaos::ChaosSession session(make_options());
    session.run_to(TimePoint{} + warmup);
    session.arm_plan(seed, warmup);
    session.run_to(session.run_end());
    chaos::ChaosResult r;
    session.finish(r);
    fresh.push_back(chaos_fingerprint(r));
  }

  chaos::ChaosSession shared(make_options());
  shared.run_to(TimePoint{} + warmup);
  std::vector<checkpoint::ForkResult> forked = checkpoint::fork_sweep(
      seeds.size(), 2, [&shared, &seeds](std::size_t i) {
        shared.arm_plan(seeds[i], seconds(2));
        shared.run_to(shared.run_end());
        chaos::ChaosResult r;
        shared.finish(r);
        return chaos_fingerprint(r);
      });

  ASSERT_EQ(forked.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(forked[i].ok) << "seed " << seeds[i];
    EXPECT_EQ(forked[i].payload, fresh[i]) << "seed " << seeds[i];
  }
}

TEST(CheckpointRivc, EncodeDecodeRoundTrips) {
  std::unique_ptr<checkpoint::Scenario> sc =
      checkpoint::make_golden_scenario("gap_chain");
  sc->start();
  sc->run_to(mid_time("gap_chain"));
  checkpoint::Snapshot snap = sc->capture();

  std::vector<std::byte> wire = checkpoint::encode(snap);
  checkpoint::Snapshot back;
  std::string err;
  ASSERT_TRUE(checkpoint::decode(wire, &back, &err)) << err;
  EXPECT_EQ(checkpoint::diff_snapshots(snap, back), "");
  EXPECT_EQ(back.scenario, "gap_chain");
  EXPECT_EQ(back.seed, 42u);
  EXPECT_EQ(back.at, snap.at);
  EXPECT_EQ(back.trace_hash, snap.trace_hash);
  ASSERT_NE(back.find("sim.kernel"), nullptr);
  ASSERT_NE(back.find("net.wifi"), nullptr);
  ASSERT_NE(back.find("bus.devices"), nullptr);
  ASSERT_NE(back.find("proc.1"), nullptr);
  EXPECT_EQ(back.find("nonexistent"), nullptr);
  // Re-encoding the decoded snapshot is byte-identical (canonical form).
  EXPECT_EQ(checkpoint::encode(back), wire);
}

TEST(CheckpointRivc, DiffNamesFirstDivergentSectionAndByte) {
  checkpoint::Snapshot a;
  a.scenario = "x";
  a.sections.push_back(
      {"sim.kernel", {std::byte{1}, std::byte{2}, std::byte{3}}});
  a.sections.push_back(
      {"proc.2", {std::byte{9}, std::byte{8}, std::byte{7}}});
  checkpoint::Snapshot b = a;
  EXPECT_EQ(checkpoint::diff_snapshots(a, b), "");
  b.sections[1].payload[1] = std::byte{0x3b};
  const std::string diff = checkpoint::diff_snapshots(a, b);
  EXPECT_NE(diff.find("proc.2"), std::string::npos) << diff;
  EXPECT_NE(diff.find("byte 1"), std::string::npos) << diff;
  b = a;
  b.trace_hash = 1;
  EXPECT_NE(checkpoint::diff_snapshots(a, b).find("trace hash"),
            std::string::npos);
}

// Two independent runs of the same scenario, captured at the same virtual
// time, must serialize byte-identically — capture is a pure function of
// logical state with no incidental layout leaking through.
TEST(CheckpointDeterminismPins, CaptureIsAPureFunctionOfState) {
  auto capture_at_mid = [] {
    std::unique_ptr<checkpoint::Scenario> sc =
        checkpoint::make_golden_scenario("failover");
    sc->start();
    sc->run_to(mid_time("failover"));
    return checkpoint::encode(sc->capture());
  };
  EXPECT_EQ(capture_at_mid(), capture_at_mid());
}

// Running to T in several uneven chunks (how a checkpointing run crosses
// T) must capture exactly what one monolithic run_to(T) captures.
TEST(CheckpointDeterminismPins, ChunkedRunEqualsMonolithicRun) {
  auto capture_at_end = [](bool chunked) {
    std::unique_ptr<checkpoint::Scenario> sc =
        checkpoint::make_golden_scenario("failover");
    sc->start();
    if (chunked) {
      sc->run_to(TimePoint{} + milliseconds(1234));
      sc->run_to(TimePoint{} + milliseconds(2500));
      sc->run_to(TimePoint{} + seconds(4));
      sc->run_to(TimePoint{} + milliseconds(7001));
    }
    sc->run_to(TimePoint{} + seconds(8));
    return checkpoint::encode(sc->capture());
  };
  EXPECT_EQ(capture_at_end(true), capture_at_end(false));
}

// StableStore is the one unordered container on a state-affecting path:
// its checkpoint serialization must not depend on insertion order or
// rehash history (the sort in checkpoint_state is load-bearing).
TEST(CheckpointDeterminismPins, StableStoreOrder) {
  auto value = [](int i) {
    return std::vector<std::byte>{std::byte(i), std::byte(i / 7)};
  };
  sim::StableStore ascending;
  for (int i = 0; i < 40; ++i)
    ascending.put("key/" + std::to_string(i), value(i));
  sim::StableStore descending;
  // Different insertion order plus churn: extra keys inserted and erased
  // to perturb the hash map's bucket/rehash history.
  for (int i = 0; i < 64; ++i)
    descending.put("churn/" + std::to_string(i), value(i));
  for (int i = 39; i >= 0; --i)
    descending.put("key/" + std::to_string(i), value(i));
  for (int i = 0; i < 64; ++i) descending.erase("churn/" + std::to_string(i));

  BinaryWriter wa, wb;
  ascending.checkpoint_state(wa);
  descending.checkpoint_state(wb);
  EXPECT_EQ(wa.take(), wb.take());
}

// Cancelling timers in different orders leaves different slab/free-list
// layouts behind; the kernel's capture must not see any of it.
TEST(CheckpointDeterminismPins, TimerCancelOrderIndependence) {
  auto capture = [](bool swap_cancel_order) {
    sim::Simulation sim(7);
    sim::TimerId keep1 = sim.schedule_after(seconds(10), [] {});
    sim::TimerId victim1 = sim.schedule_after(seconds(20), [] {});
    sim::TimerId victim2 = sim.schedule_after(seconds(30), [] {});
    sim::TimerId keep2 = sim.schedule_after(seconds(40), [] {});
    (void)keep1;
    (void)keep2;
    if (swap_cancel_order) {
      sim.cancel(victim2);
      sim.cancel(victim1);
    } else {
      sim.cancel(victim1);
      sim.cancel(victim2);
    }
    sim.run_for(seconds(1));
    BinaryWriter w;
    sim.checkpoint_state(w);
    return w.take();
  };
  EXPECT_EQ(capture(false), capture(true));
}

}  // namespace
}  // namespace riv
