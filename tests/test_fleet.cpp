// Fleet layer: seed derivation, population sampling, campaign projection,
// and the sharded runner's bit-determinism across --jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "fleet/campaign.hpp"
#include "fleet/fleet.hpp"
#include "fleet/population.hpp"

namespace riv::fleet {
namespace {

// --- seed derivation ------------------------------------------------------

// A million homes must get a million distinct RNG streams. derive_seed is
// collision-free by construction (odd-constant multiply and the SplitMix64
// finalizer are both bijections on u64), but the property the fleet layer
// actually depends on is that the mapping never changes: home 17 of fleet
// seed 1 must be the same home forever. The digest below pins the first
// million derived seeds bit-for-bit; if it moves, every committed fleet
// digest, BENCH_fleet.json and golden row set silently remaps.
TEST(SeedDerivation, MillionSeedsCollisionFreeAndPinned) {
  constexpr std::uint64_t kN = 1'000'000;
  hash::Fnv1aStream stream;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    std::uint64_t v = derive_seed(1, i);
    seeds.push_back(v);
    for (int b = 0; b < 8; ++b)
      stream.put(static_cast<std::uint8_t>(v >> (8 * b)));
  }
  EXPECT_EQ(seeds.front(), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(stream.value(), 0x9896bc69d5744cf8ULL);

  std::sort(seeds.begin(), seeds.end());
  EXPECT_TRUE(std::adjacent_find(seeds.begin(), seeds.end()) == seeds.end())
      << "derived seeds collide";
}

TEST(SeedDerivation, RootsProduceDisjointStreams) {
  // Different fleet seeds must not generate related home seeds; spot-check
  // that nearby roots and indices never coincide in a small window.
  std::vector<std::uint64_t> all;
  for (std::uint64_t root = 0; root < 8; ++root)
    for (std::uint64_t i = 0; i < 1024; ++i)
      all.push_back(derive_seed(root, i));
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
}

// --- population sampling --------------------------------------------------

TEST(Population, SampleHomeIsPureFunction) {
  PopulationModel model;
  HomeSpec a = sample_home(model, 9, 17);
  HomeSpec b = sample_home(model, 9, 17);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.n_processes, b.n_processes);
  ASSERT_EQ(a.sensors.size(), b.sensors.size());
  for (std::size_t i = 0; i < a.sensors.size(); ++i) {
    EXPECT_EQ(a.sensors[i].spec.rate_hz, b.sensors[i].spec.rate_hz);
    EXPECT_EQ(a.sensors[i].spec.payload_size, b.sensors[i].spec.payload_size);
    EXPECT_EQ(a.sensors[i].spec.tech, b.sensors[i].spec.tech);
    EXPECT_EQ(a.sensors[i].receivers, b.sensors[i].receivers);
    EXPECT_EQ(a.sensors[i].guarantee, b.sensors[i].guarantee);
  }
  // Different index → different seed (and almost surely different census).
  EXPECT_NE(sample_home(model, 9, 18).seed, a.seed);
}

TEST(Population, SamplesStayInsideTheModel) {
  PopulationModel model;
  for (std::uint64_t i = 0; i < 500; ++i) {
    HomeSpec h = sample_home(model, 3, i);
    EXPECT_GE(h.n_processes, model.processes.lo);
    EXPECT_LE(h.n_processes, model.processes.hi);
    EXPECT_GE(static_cast<int>(h.sensors.size()), model.sensors.lo);
    EXPECT_LE(static_cast<int>(h.sensors.size()), model.sensors.hi);
    for (const HomeSpec::SensorPlan& s : h.sensors) {
      EXPECT_GE(s.spec.rate_hz, model.rate_hz.lo);
      EXPECT_LE(s.spec.rate_hz, model.rate_hz.hi);
      EXPECT_GE(static_cast<int>(s.spec.payload_size),
                model.payload_bytes.lo);
      EXPECT_LE(static_cast<int>(s.spec.payload_size),
                model.payload_bytes.hi);
      EXPECT_GE(s.link_loss, model.link_loss.lo);
      EXPECT_LE(s.link_loss, model.link_loss.hi);
      EXPECT_GE(static_cast<int>(s.receivers.size()), 1);
      for (int r : s.receivers) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, h.n_processes);
      }
    }
  }
}

// --- campaigns ------------------------------------------------------------

CampaignPlan wifi_plan(double fraction, int region = -1) {
  CampaignPlan plan;
  CampaignEvent ev;
  ev.kind = CampaignFault::kWifiOutage;
  ev.at = seconds(10);
  ev.duration = seconds(20);
  ev.fraction = fraction;
  ev.region = region;
  plan.events.push_back(ev);
  return plan;
}

// A 5% Bernoulli over 20k homes concentrates tightly (sigma ~0.15%); the
// sampled hit fraction must land near the nominal one, and membership must
// be a pure function of (fleet_seed, event, home).
TEST(Campaign, MembershipFractionConcentrates) {
  CampaignPlan plan = wifi_plan(0.05);
  constexpr std::uint64_t kHomes = 20'000;
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < kHomes; ++i) {
    bool hit = event_hits_home(plan, 0, 1, i);
    EXPECT_EQ(hit, event_hits_home(plan, 0, 1, i));
    if (hit) ++hits;
  }
  double frac = static_cast<double>(hits) / static_cast<double>(kHomes);
  EXPECT_GT(frac, 0.04);
  EXPECT_LT(frac, 0.06);
}

TEST(Campaign, RegionScopeExcludesOtherRegions) {
  CampaignPlan plan = wifi_plan(1.0, /*region=*/3);
  std::uint64_t in_region = 0, hits = 0;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    bool member = home_region(plan, 1, i) == 3;
    in_region += member ? 1 : 0;
    if (event_hits_home(plan, 0, 1, i)) {
      ++hits;
      EXPECT_TRUE(member) << "home " << i << " hit outside region 3";
    }
  }
  // fraction = 1.0 within scope: every region-3 home is sampled.
  EXPECT_EQ(hits, in_region);
  EXPECT_GT(in_region, 0u);
  EXPECT_LT(in_region, 4000u);
}

TEST(Campaign, StampProjectsFaultAndHealPairs) {
  CampaignPlan plan = wifi_plan(1.0);
  HomeSpec home = sample_home(PopulationModel{}, 1, 5);
  chaos::FaultPlan stamped = stamp_home_plan(plan, 1, home);
  ASSERT_FALSE(stamped.actions.empty());
  // Sorted by time, and the heal point the runner probes at is the end of
  // the outage window.
  for (std::size_t i = 1; i < stamped.actions.size(); ++i)
    EXPECT_LE(stamped.actions[i - 1].at, stamped.actions[i].at);
  EXPECT_EQ(last_heal_time(plan, 1, home.index),
            TimePoint{} + plan.events[0].at + plan.events[0].duration)
      << "heal probe point must be the outage end";
}

TEST(Campaign, ZeroFractionStampsNothing) {
  CampaignPlan plan = wifi_plan(0.0);
  for (std::uint64_t i = 0; i < 64; ++i) {
    HomeSpec home = sample_home(PopulationModel{}, 1, i);
    EXPECT_TRUE(stamp_home_plan(plan, 1, home).actions.empty());
  }
}

TEST(Campaign, ParseSpec) {
  CampaignEvent ev;
  ASSERT_TRUE(parse_campaign_event("wifi:720:60:0.05", ev));
  EXPECT_EQ(ev.kind, CampaignFault::kWifiOutage);
  EXPECT_EQ(ev.at, seconds(720));
  EXPECT_EQ(ev.duration, seconds(60));
  EXPECT_DOUBLE_EQ(ev.fraction, 0.05);
  EXPECT_EQ(ev.region, -1);

  ASSERT_TRUE(parse_campaign_event("power:30:10:0.5:3", ev));
  EXPECT_EQ(ev.kind, CampaignFault::kPowerBlip);
  EXPECT_EQ(ev.region, 3);
  ASSERT_TRUE(parse_campaign_event("rf:5:5:1", ev));
  EXPECT_EQ(ev.kind, CampaignFault::kSensorDegrade);

  EXPECT_FALSE(parse_campaign_event("", ev));
  EXPECT_FALSE(parse_campaign_event("quake:1:1:0.5", ev));
  EXPECT_FALSE(parse_campaign_event("wifi:1:1", ev));
  EXPECT_FALSE(parse_campaign_event("wifi:1:1:2.0", ev));
  EXPECT_FALSE(parse_campaign_event("wifi:x:1:0.5", ev));
}

// Parsing is strict, not best-effort: a field that only partially parses
// ("1x"), an empty field, or a nonsense region must be rejected, never
// silently coerced (atoi-style) into a number.
TEST(Campaign, ParseSpecRejectsTrailingGarbageAndBadRegions) {
  CampaignEvent ev;
  EXPECT_FALSE(parse_campaign_event("wifi:1x:1:0.5", ev));
  EXPECT_FALSE(parse_campaign_event("wifi:1:1s:0.5", ev));
  EXPECT_FALSE(parse_campaign_event("wifi:1:1:0.5%", ev));
  EXPECT_FALSE(parse_campaign_event("wifi::1:0.5", ev));
  EXPECT_FALSE(parse_campaign_event("wifi:1::0.5", ev));
  EXPECT_FALSE(parse_campaign_event("wifi:1:1:", ev));
  EXPECT_FALSE(parse_campaign_event("wifi:1:1:0.5:", ev));
  EXPECT_FALSE(parse_campaign_event("wifi:1:1:0.5:abc", ev));
  EXPECT_FALSE(parse_campaign_event("wifi:1:1:0.5:2x", ev));
  EXPECT_FALSE(parse_campaign_event("wifi:1:1:0.5:-1", ev));
  EXPECT_FALSE(parse_campaign_event("wifi:1:1:0.5:3:9", ev));
  // The happy path still parses after all that strictness.
  EXPECT_TRUE(parse_campaign_event("wifi:1:1:0.5:3", ev));
  EXPECT_EQ(ev.region, 3);
}

// --- the sharded runner ---------------------------------------------------

FleetOptions small_fleet(std::uint64_t homes, int jobs) {
  FleetOptions opt;
  opt.seed = 1;
  opt.homes = homes;
  opt.jobs = jobs;
  opt.shard_size = 16;  // several shards even in the small fleets
  opt.population.sim_duration = seconds(5);
  opt.keep_home_rows = true;
  return opt;
}

void expect_identical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.homes, b.homes);
  EXPECT_EQ(a.processes, b.processes);
  EXPECT_EQ(a.sensors, b.sensors);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.emitted, b.emitted);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.homes_hit, b.homes_hit);
  EXPECT_EQ(a.homes_hit_survived, b.homes_hit_survived);
  EXPECT_EQ(a.homes_survived, b.homes_survived);
  EXPECT_EQ(a.fault_digest, b.fault_digest);
  EXPECT_EQ(registry_fingerprint(a.merged), registry_fingerprint(b.merged));
  EXPECT_EQ(a.rows, b.rows);
}

TEST(Fleet, SmallFleetBitIdenticalAcrossJobs) {
  FleetResult serial = run_fleet(small_fleet(48, 1));
  FleetResult threaded = run_fleet(small_fleet(48, 3));
  EXPECT_GT(serial.delivered, 0u);
  expect_identical(serial, threaded);
}

TEST(Fleet, ShardSizeDoesNotChangeTheResult) {
  FleetOptions a = small_fleet(48, 2);
  FleetOptions b = small_fleet(48, 2);
  a.shard_size = 5;   // ragged tail shard
  b.shard_size = 48;  // single shard
  expect_identical(run_fleet(a), run_fleet(b));
}

TEST(Fleet, RowsMatchAggregates) {
  FleetResult r = run_fleet(small_fleet(32, 2));
  ASSERT_EQ(r.rows.size(), 32u);
  std::uint64_t delivered = 0, emitted = 0, procs = 0;
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    EXPECT_EQ(r.rows[i].seed, derive_seed(1, i));
    delivered += r.rows[i].delivered;
    emitted += r.rows[i].emitted;
    procs += r.rows[i].n_processes;
  }
  EXPECT_EQ(delivered, r.delivered);
  EXPECT_EQ(emitted, r.emitted);
  EXPECT_EQ(procs, r.processes);
  EXPECT_EQ(total_delivered(r.merged), r.delivered)
      << "merged registry and row aggregates disagree";
}

// The ISSUE's reference incident: a WiFi outage across ~5% of homes must
// visibly hurt the merged dashboard — faults actually injected, hit homes
// sampled near the nominal fraction, and the population's worst delivery
// delay stretched to the outage scale (anti-entropy catches gapless
// subscriptions up after heal, so delay_max ~ outage duration, orders of
// magnitude above the healthy fleet's worst case).
TEST(Fleet, CampaignImpactVisibleInMergedDashboard) {
  FleetOptions healthy = small_fleet(96, 2);
  healthy.population.sim_duration = seconds(60);
  FleetOptions stormy = healthy;
  stormy.campaign = wifi_plan(0.05);

  FleetResult h = run_fleet(healthy);
  FleetResult s = run_fleet(stormy);
  EXPECT_EQ(h.homes_hit, 0u);
  EXPECT_EQ(h.faults_injected, 0u);
  EXPECT_GT(s.homes_hit, 0u);
  EXPECT_LT(s.homes_hit, s.homes / 2);
  EXPECT_GT(s.faults_injected, 0u);
  // Every hit home kept a live fault trace.
  std::uint64_t hit_rows = 0;
  for (const HomeOutcome& row : s.rows)
    if (row.hit) {
      ++hit_rows;
      EXPECT_GT(row.faults_injected, 0u);
      EXPECT_NE(row.fault_hash, 0u);
    }
  EXPECT_EQ(hit_rows, s.homes_hit);

  Dashboard dh = make_dashboard(h, 1.0, 1);
  Dashboard ds = make_dashboard(s, 1.0, 1);
  EXPECT_GT(ds.delay_max, dh.delay_max * 10)
      << "outage must dominate the population's worst delivery delay";
  EXPECT_GT(ds.survival_rate, 0.0);
  EXPECT_LE(ds.survival_rate, 1.0);
  EXPECT_DOUBLE_EQ(dh.survival_rate, 1.0);  // nothing hit
}

}  // namespace
}  // namespace riv::fleet
