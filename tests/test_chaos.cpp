// Unit tests for the chaos engine itself: plan generation is a pure
// function of the seed, generated plans are well-formed by construction,
// whole engine runs are deterministic (byte-identical fault traces), and
// the violation pipeline actually reports when an invariant is broken.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "chaos/engine.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/trace.hpp"

namespace riv {
namespace {

using namespace riv::chaos;

PlanOptions small_plan() {
  PlanOptions opt;
  opt.horizon = seconds(40);
  opt.n_processes = 4;
  opt.devices = {SensorId{1}};
  opt.device_links = {{SensorId{1}, ProcessId{1}}, {SensorId{1}, ProcessId{2}}};
  return opt;
}

TEST(FaultPlanTest, SameSeedSamePlan) {
  FaultPlan a = generate_plan(42, small_plan());
  FaultPlan b = generate_plan(42, small_plan());
  ASSERT_EQ(a.actions.size(), b.actions.size());
  for (std::size_t i = 0; i < a.actions.size(); ++i)
    EXPECT_EQ(to_string(a.actions[i]), to_string(b.actions[i]));
}

TEST(FaultPlanTest, DifferentSeedsDifferentPlans) {
  FaultPlan a = generate_plan(1, small_plan());
  FaultPlan b = generate_plan(2, small_plan());
  std::string sa, sb;
  for (const FaultAction& act : a.actions) sa += to_string(act) + "\n";
  for (const FaultAction& act : b.actions) sb += to_string(act) + "\n";
  EXPECT_NE(sa, sb);
}

TEST(FaultPlanTest, SortedAndInsideHorizon) {
  PlanOptions opt = small_plan();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FaultPlan plan = generate_plan(seed, opt);
    ASSERT_FALSE(plan.actions.empty());
    TimePoint horizon_end = TimePoint{} + opt.horizon;
    TimePoint prev{};
    for (const FaultAction& act : plan.actions) {
      EXPECT_GE(act.at, prev) << to_string(act);
      prev = act.at;
    }
    // Chaos stops at the horizon; only deferred restores of faults
    // injected just before it (and the final quiescence window's close)
    // may extend past it, and never by more than the max hold.
    for (const FaultAction& act : plan.actions) {
      if (act.kind == FaultKind::kQuiesceEnd) continue;
      EXPECT_LE(act.at, horizon_end + opt.max_fault_hold) << to_string(act);
      switch (act.kind) {
        case FaultKind::kCrashProcess:
        case FaultKind::kRecoverProcess:
        case FaultKind::kPartition:
        case FaultKind::kHealPartition:
        case FaultKind::kEdgeDown:
        case FaultKind::kEdgeDelay:
        case FaultKind::kEdgeLoss:
        case FaultKind::kDeviceCrash:
        case FaultKind::kQuiesceBegin:
          // New faults are never injected past the horizon.
          EXPECT_LE(act.at, horizon_end) << to_string(act);
          break;
        default:
          break;
      }
    }
  }
}

// Replays the plan against a model of home state and checks the generator's
// well-formedness contract: at least one process always up, recover only of
// crashed processes, edge restores only of severed edges.
TEST(FaultPlanTest, WellFormedAcrossSeeds) {
  PlanOptions opt = small_plan();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    FaultPlan plan = generate_plan(seed, opt);
    std::set<ProcessId> down;
    std::set<std::pair<ProcessId, ProcessId>> edges_down;
    // Quiescence heals severed edges, but their paired deferred restore
    // still arrives later (the injector treats it as a no-op).
    std::set<std::pair<ProcessId, ProcessId>> edge_up_pending;
    bool partitioned = false;
    int quiesce_windows = 0;
    for (const FaultAction& act : plan.actions) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " action=" << to_string(act));
      switch (act.kind) {
        case FaultKind::kCrashProcess:
          EXPECT_FALSE(down.count(act.a));
          down.insert(act.a);
          EXPECT_LT(down.size(),
                    static_cast<std::size_t>(opt.n_processes));
          break;
        case FaultKind::kRecoverProcess:
          EXPECT_TRUE(down.count(act.a));
          down.erase(act.a);
          break;
        case FaultKind::kPartition:
          EXPECT_FALSE(partitioned);
          EXPECT_FALSE(act.group.empty());
          EXPECT_LT(act.group.size(),
                    static_cast<std::size_t>(opt.n_processes));
          partitioned = true;
          break;
        case FaultKind::kHealPartition:
          EXPECT_TRUE(partitioned);
          partitioned = false;
          break;
        case FaultKind::kEdgeDown:
          EXPECT_NE(act.a, act.b);
          EXPECT_FALSE(edges_down.count({act.a, act.b}));
          edges_down.insert({act.a, act.b});
          break;
        case FaultKind::kEdgeUp:
          EXPECT_TRUE(edges_down.count({act.a, act.b}) ||
                      edge_up_pending.count({act.a, act.b}));
          edges_down.erase({act.a, act.b});
          edge_up_pending.erase({act.a, act.b});
          break;
        case FaultKind::kQuiesceBegin:
          // Quiescence heals everything.
          down.clear();
          edge_up_pending.insert(edges_down.begin(), edges_down.end());
          edges_down.clear();
          partitioned = false;
          ++quiesce_windows;
          break;
        default:
          break;
      }
    }
    EXPECT_TRUE(down.empty());        // ends healed
    EXPECT_TRUE(edges_down.empty());
    EXPECT_GE(quiesce_windows, 1);    // converged checks ran mid-run
  }
}

TEST(TraceRecorderTest, HashCoversEveryLine) {
  TraceRecorder a, b;
  a.record("alpha");
  a.record(TimePoint{1500}, "beta");
  b.record("alpha");
  b.record(TimePoint{1500}, "beta");
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.digest().size(), 16u);
  b.record("gamma");
  EXPECT_NE(a.hash(), b.hash());
}

EngineOptions quick_engine(std::uint64_t seed, appmodel::Guarantee g) {
  EngineOptions opt;
  opt.scenario.seed = seed;
  opt.scenario.guarantee = g;
  opt.plan.horizon = seconds(25);
  return opt;
}

TEST(ChaosEngineTest, GaplessSeedsRunClean) {
  for (std::uint64_t seed : {1, 7, 13}) {
    ChaosResult r =
        ChaosEngine(quick_engine(seed, appmodel::Guarantee::kGapless)).run();
    EXPECT_TRUE(r.ok()) << "seed " << seed;
    for (const Violation& v : r.violations)
      ADD_FAILURE() << "seed " << seed << ": " << to_string(v);
    EXPECT_GT(r.faults_injected, 0u);
    EXPECT_GT(r.delivered, 0u);
  }
}

TEST(ChaosEngineTest, GapSeedsRunClean) {
  for (std::uint64_t seed : {2, 11}) {
    ChaosResult r =
        ChaosEngine(quick_engine(seed, appmodel::Guarantee::kGap)).run();
    EXPECT_TRUE(r.ok()) << "seed " << seed;
    for (const Violation& v : r.violations)
      ADD_FAILURE() << "seed " << seed << ": " << to_string(v);
  }
}

TEST(ChaosEngineTest, SameSeedByteIdenticalTrace) {
  EngineOptions opt = quick_engine(5, appmodel::Guarantee::kGapless);
  ChaosResult a = ChaosEngine(opt).run();
  ChaosResult b = ChaosEngine(opt).run();
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i)
    EXPECT_EQ(a.trace[i], b.trace[i]);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

TEST(ChaosEngineTest, DifferentSeedsDifferentTraces) {
  ChaosResult a =
      ChaosEngine(quick_engine(3, appmodel::Guarantee::kGapless)).run();
  ChaosResult b =
      ChaosEngine(quick_engine(4, appmodel::Guarantee::kGapless)).run();
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

// A deliberately broken invariant must surface as a timestamped violation
// — this is the pipeline chaos_run turns into a one-line repro command.
class AlwaysViolated : public Invariant {
 public:
  const char* name() const override { return "always-violated"; }
  bool continuous() const override { return true; }
  void check(const CheckContext& ctx,
             std::vector<Violation>& out) const override {
    out.push_back({name(), ctx.home->sim().now(), "intentional"});
  }
};

TEST(ChaosEngineTest, BrokenInvariantIsReported) {
  ChaosEngine engine(quick_engine(1, appmodel::Guarantee::kGapless));
  engine.add_invariant(std::make_unique<AlwaysViolated>());
  ChaosResult r = engine.run();
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations.front().invariant, "always-violated");
  EXPECT_GT(r.violations.front().at, TimePoint{});
}

}  // namespace
}  // namespace riv
