// Fleet observatory: sampler purity, SLO health scoring, order-invariant
// top-K folding, observation determinism across --jobs, and triage's
// byte-identical drill-down replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "fleet/campaign.hpp"
#include "fleet/fleet.hpp"
#include "fleet/observe.hpp"

namespace riv::fleet {
namespace {

// --- the sampler ----------------------------------------------------------

TEST(Sampler, PureFunctionOfSeedAndIndex) {
  for (std::uint64_t i = 0; i < 256; ++i)
    EXPECT_EQ(home_sampled(7, i, 0.01), home_sampled(7, i, 0.01));
  // Edge fractions short-circuit exactly.
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_FALSE(home_sampled(7, i, 0.0));
    EXPECT_TRUE(home_sampled(7, i, 1.0));
  }
}

// A 5% hash-threshold draw over 20k homes concentrates tightly (sigma
// ~0.15%), same bound the campaign membership test pins.
TEST(Sampler, FractionConcentrates) {
  constexpr std::uint64_t kHomes = 20'000;
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < kHomes; ++i)
    if (home_sampled(1, i, 0.05)) ++hits;
  double frac = static_cast<double>(hits) / static_cast<double>(kHomes);
  EXPECT_GT(frac, 0.04);
  EXPECT_LT(frac, 0.06);
}

// The sampler must be salted independently of campaign membership: a home
// being flight-recorded cannot be correlated with it being fault-injected,
// or the sampled population would be a biased view of the fleet.
TEST(Sampler, IndependentOfCampaignMembership) {
  CampaignPlan plan;
  CampaignEvent ev;
  ev.fraction = 0.5;
  plan.events.push_back(ev);
  constexpr std::uint64_t kHomes = 20'000;
  std::uint64_t sampled_and_hit = 0, sampled = 0;
  for (std::uint64_t i = 0; i < kHomes; ++i) {
    if (!home_sampled(1, i, 0.5)) continue;
    ++sampled;
    if (event_hits_home(plan, 0, 1, i)) ++sampled_and_hit;
  }
  // Under independence ~50% of sampled homes are hit.
  double frac =
      static_cast<double>(sampled_and_hit) / static_cast<double>(sampled);
  EXPECT_GT(frac, 0.45);
  EXPECT_LT(frac, 0.55);
}

// --- health scoring -------------------------------------------------------

TEST(HealthScore, PenaltySchedule) {
  SloSpec slo;
  slo.delivery_p99 = milliseconds(1);  // 1000 us

  HomeOutcome ok;
  ok.delivered = 10;
  ok.emitted = 10;
  ok.survived = true;
  metrics::Registry fast;
  fast.latency("app1.delay").record(Duration{500});  // under SLO
  HomeHealth healthy = score_home(slo, 3, ok, fast);
  EXPECT_EQ(healthy.score, 0u);
  EXPECT_EQ(healthy.index, 3u);
  EXPECT_EQ(healthy.delay_p99_us, 500);

  // Over-SLO p99 accrues the exact microsecond overshoot (values below
  // 16 us over the target would be bucket-exact; here min==max pins it).
  metrics::Registry slow;
  slow.latency("app1.delay").record(Duration{5000});
  HomeHealth late = score_home(slo, 4, ok, slow);
  EXPECT_EQ(late.score, 4000u);

  // Emitted-but-delivered-nothing is the worst state a home can be in.
  HomeOutcome dead = ok;
  dead.delivered = 0;
  HomeHealth black_hole = score_home(slo, 5, dead, fast);
  EXPECT_EQ(black_hole.score, 50'000'000u);

  // Hit by a campaign and never recovered.
  HomeOutcome lost = ok;
  lost.hit = true;
  lost.survived = false;
  HomeHealth casualty = score_home(slo, 6, lost, fast);
  EXPECT_EQ(casualty.score, 10'000'000u);
}

TEST(HealthScore, ProvenancePenalties) {
  SloSpec slo;
  HomeOutcome out;
  out.delivered = 1;
  out.emitted = 1;
  out.survived = true;
  metrics::Registry reg;
  HomeHealth row = score_home(slo, 9, out, reg);
  EXPECT_EQ(row.score, 0u);
  EXPECT_FALSE(row.sampled);

  trace::Analysis an;
  an.ordering_violations.push_back("delivered before ingested");
  trace::Orphan orphan;
  orphan.reason = "unexplained";
  an.orphans.push_back(orphan);
  trace::Orphan benign;
  benign.reason = "in_flight_at_end";
  an.orphans.push_back(benign);  // explained: no penalty
  an.duplicates.push_back(trace::Duplicate{});
  apply_provenance(row, an);
  EXPECT_TRUE(row.sampled);
  EXPECT_EQ(row.ordering_violations, 1u);
  EXPECT_EQ(row.unexplained_orphans, 1u);
  EXPECT_EQ(row.duplicates, 1u);
  EXPECT_EQ(row.score, 500'000u + 2 * 200'000u);
}

TEST(HealthScore, WorseIsAStrictTotalOrder) {
  HomeHealth a;
  a.index = 1;
  a.score = 10;
  HomeHealth b;
  b.index = 2;
  b.score = 10;
  HomeHealth c;
  c.index = 3;
  c.score = 5;
  EXPECT_TRUE(worse(a, b));   // tie broken by index
  EXPECT_FALSE(worse(b, a));
  EXPECT_TRUE(worse(a, c));   // higher score is worse
  EXPECT_FALSE(worse(c, a));
  EXPECT_FALSE(worse(a, a));  // irreflexive
}

// --- top-K folding --------------------------------------------------------

// The top-K of a multiset under a strict total order is a pure function of
// the set: no matter how 1k rows are partitioned into shards, shuffled
// within shards, or merged in scrambled shard order, the worst-K list must
// come out identical. This is the property that lets run_fleet fold
// shard-local heaps without any cross-shard coordination.
TEST(TopKHealth, MergeIsOrderInvariant) {
  std::mt19937 rng(1234);
  std::vector<HomeHealth> rows(1000);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].index = i;
    // Coarse scores force plenty of exact ties to stress the tiebreak.
    rows[i].score = rng() % 50;
    rows[i].delivered = rng() % 100;
  }

  constexpr std::size_t kK = 10;
  std::vector<HomeHealth> expected = rows;
  std::sort(expected.begin(), expected.end(), worse);
  expected.resize(kK);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<HomeHealth> shuffled = rows;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);

    // Random partition into 1..32 shards.
    std::size_t n_shards = 1 + rng() % 32;
    std::vector<TopKHealth> shards(n_shards, TopKHealth{kK});
    for (std::size_t i = 0; i < shuffled.size(); ++i)
      shards[rng() % n_shards].add(shuffled[i]);

    std::shuffle(shards.begin(), shards.end(), rng);
    TopKHealth merged{kK};
    for (const TopKHealth& s : shards) merged.merge_from(s);
    EXPECT_EQ(merged.rows(), expected) << "trial " << trial;
  }
}

TEST(TopKHealth, ZeroKKeepsNothing) {
  TopKHealth top;
  HomeHealth row;
  row.score = 99;
  top.add(row);
  EXPECT_TRUE(top.rows().empty());
}

// --- observation determinism across jobs ----------------------------------

FleetOptions observed_fleet(int jobs) {
  FleetOptions opt;
  opt.seed = 1;
  opt.homes = 96;
  opt.jobs = jobs;
  opt.shard_size = 16;
  opt.population.sim_duration = seconds(5);
  CampaignEvent ev;
  ev.kind = CampaignFault::kWifiOutage;
  ev.at = seconds(1);
  ev.duration = seconds(2);
  ev.fraction = 0.2;
  opt.campaign.events.push_back(ev);
  opt.observe.sample = 0.1;
  opt.observe.top_k = 8;
  return opt;
}

void expect_same_observation(const Observation& a, const Observation& b) {
  EXPECT_EQ(a.samples, b.samples);  // index, seed, hash, records, bytes
  EXPECT_EQ(a.trace_digest(), b.trace_digest());
  EXPECT_EQ(a.trace_records, b.trace_records);
  EXPECT_EQ(a.trace_bytes, b.trace_bytes);
  EXPECT_EQ(a.chains, b.chains);
  EXPECT_EQ(a.orphans, b.orphans);
  EXPECT_EQ(a.unexplained_orphans, b.unexplained_orphans);
  EXPECT_EQ(a.duplicates, b.duplicates);
  for (int s = 1; s < trace::kStageCount; ++s) {
    EXPECT_EQ(a.leg[s].buckets(), b.leg[s].buckets()) << "leg " << s;
    EXPECT_EQ(a.leg[s].sum_us(), b.leg[s].sum_us()) << "leg " << s;
  }
  EXPECT_EQ(a.e2e_delivery.buckets(), b.e2e_delivery.buckets());
  EXPECT_EQ(a.top.rows(), b.top.rows());
}

// The acceptance property in miniature: sampled-home set, per-home trace
// FNV hashes, leg histograms, and the top-K health list are bit-identical
// under --jobs 1 and --jobs 8 (the tier-2 gate runs this at 100k homes).
TEST(ObservedFleet, BitIdenticalAcrossJobs) {
  FleetResult serial = run_fleet(observed_fleet(1));
  FleetResult threaded = run_fleet(observed_fleet(8));

  ASSERT_FALSE(serial.observation.samples.empty());
  EXPECT_EQ(serial.fault_digest, threaded.fault_digest);
  expect_same_observation(serial.observation, threaded.observation);

  // The sampled set is exactly what the pure sampler predicts.
  std::vector<std::uint64_t> predicted;
  for (std::uint64_t i = 0; i < serial.homes; ++i)
    if (home_sampled(1, i, 0.1)) predicted.push_back(i);
  ASSERT_EQ(serial.observation.samples.size(), predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i)
    EXPECT_EQ(serial.observation.samples[i].index, predicted[i]);

  // Health scoring saw every home: the worst offender of a fleet with a
  // campaign is a hit home with a non-zero score.
  ASSERT_EQ(serial.observation.top.rows().size(), 8u);
  EXPECT_GT(serial.observation.top.rows().front().score, 0u);
}

TEST(ObservedFleet, DisabledObservabilityStaysEmpty) {
  FleetOptions opt = observed_fleet(2);
  opt.observe = ObserveOptions{};
  FleetResult r = run_fleet(opt);
  EXPECT_TRUE(r.observation.samples.empty());
  EXPECT_TRUE(r.observation.top.rows().empty());
  EXPECT_EQ(r.observation.trace_records, 0u);
}

// --- drill-down replay ----------------------------------------------------

// triage_home must reproduce a sampled home's flight recording exactly:
// same FNV hash over the packed record bytes, same record count. This is
// what makes the drill-down trustworthy — it is the incident's recording,
// not a similar one.
TEST(Triage, ReplayReproducesSampledTraceByteIdentically) {
  FleetOptions opt = observed_fleet(2);
  FleetResult r = run_fleet(opt);
  ASSERT_FALSE(r.observation.samples.empty());

  for (std::size_t i = 0; i < 3 && i < r.observation.samples.size(); ++i) {
    const TraceSample& sample = r.observation.samples[i];
    TriageReport rep = triage_home(opt, sample.index);
    EXPECT_EQ(rep.trace_hash, sample.trace_hash)
        << "home " << sample.index << " replay diverged from its recording";
    EXPECT_EQ(rep.trace_records, sample.records);
    EXPECT_EQ(rep.health.seed, sample.seed);
    EXPECT_TRUE(rep.health.sampled);
  }
}

TEST(Triage, AttributesCampaignFaults) {
  FleetOptions opt = observed_fleet(2);
  FleetResult r = run_fleet(opt);
  ASSERT_FALSE(r.observation.top.rows().empty());
  const HomeHealth& worst = r.observation.top.rows().front();
  ASSERT_TRUE(worst.hit);  // with a 20% outage the worst home was hit

  TriageReport rep = triage_home(opt, worst.index);
  EXPECT_GT(rep.faults, 0u) << "triage must see the injected faults";
  EXPECT_FALSE(rep.fault.empty());
  EXPECT_FALSE(rep.first_divergence.empty())
      << "a fault-injected home has a first divergent record";
  EXPECT_GE(rep.first_divergence_us, 0);
  EXPECT_FALSE(rep.worst_leg.empty());
  // The replay is scored like the fleet scored it.
  EXPECT_EQ(rep.health.index, worst.index);
  EXPECT_EQ(rep.health.hit, worst.hit);
  EXPECT_EQ(rep.health.delay_p99_us, worst.delay_p99_us);
}

TEST(Triage, HealthyHomeComesBackClean) {
  FleetOptions opt = observed_fleet(1);
  opt.campaign = CampaignPlan{};  // no faults anywhere
  // Any home will do; 0 is as good as any.
  TriageReport rep = triage_home(opt, 0);
  EXPECT_TRUE(rep.check_ok);
  EXPECT_EQ(rep.faults, 0u);
  EXPECT_TRUE(rep.fault.empty());
  EXPECT_TRUE(rep.first_divergence.empty());
  EXPECT_FALSE(rep.health.hit);
}

}  // namespace
}  // namespace riv::fleet
