// Byzantine chaos end-to-end: defended runs stay invariant-clean and the
// integrity audit accounts for every injected attack; an undefended run
// with the identical attacker demonstrably mis-actuates.
//
// These tests close the loop the DESIGN §12 threat model promises:
//   injector ground truth (kByzantine markers)  ==  detector evidence
// with zero false positives on a non-adversarial run.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "chaos/engine.hpp"
#include "trace/provenance.hpp"

namespace riv {
namespace {

chaos::EngineOptions byzantine_options(std::uint64_t seed) {
  chaos::EngineOptions opt;
  opt.scenario.seed = seed;
  opt.plan.horizon = seconds(45);
  opt.plan.spoof_events = true;
  opt.plan.replay_events = true;
  opt.plan.corrupt_process = true;
  opt.flight = true;  // the audit reads the flight-recorder trace
  return opt;
}

TEST(ByzantineTest, DefendedRunStaysCleanUnderAttack) {
  chaos::ChaosResult r = chaos::ChaosEngine(byzantine_options(9)).run();

  EXPECT_TRUE(r.quiesced);
  for (const chaos::Violation& v : r.violations)
    ADD_FAILURE() << chaos::to_string(v);
  EXPECT_GT(r.byzantine_attacks, 0u) << "attacker never fired";
  EXPECT_GT(r.delivered, 0u);
}

TEST(ByzantineTest, AuditAccountsForEveryInjectedAttack) {
  chaos::ChaosResult r = chaos::ChaosEngine(byzantine_options(9)).run();
  ASSERT_TRUE(r.flight != nullptr);

  trace::Audit au = trace::audit(r.flight->records());
  EXPECT_EQ(au.attacks, r.byzantine_attacks)
      << "every performed attack must leave a ground-truth marker";
  EXPECT_GT(au.attacks, 0u);
  EXPECT_EQ(au.missed, 0u) << trace::render(au);
  EXPECT_TRUE(au.unattributed.empty()) << trace::render(au);
  EXPECT_TRUE(au.all_accounted());
  EXPECT_EQ(au.detected + au.lost, au.attacks);

  // Every finding is classified and attributed to a concrete fault id.
  for (const trace::AuditFinding& f : au.findings) {
    EXPECT_FALSE(f.cls.empty());
    EXPECT_GT(f.fault_id, 0u) << f.attack;
    EXPECT_FALSE(f.evidence.empty()) << f.attack;
  }
}

// Crash faults alongside the attacker exercise the `lost` accounting
// path: frames mutated in flight toward a down host die in the network
// before any detector sees them, and the audit must prove that instead
// of reporting a miss.
TEST(ByzantineTest, AuditAccountsForAttacksLostToCrashes) {
  chaos::EngineOptions opt = byzantine_options(1);
  opt.plan.crashes = true;
  chaos::ChaosResult r = chaos::ChaosEngine(opt).run();
  ASSERT_TRUE(r.flight != nullptr);

  for (const chaos::Violation& v : r.violations)
    ADD_FAILURE() << chaos::to_string(v);
  trace::Audit au = trace::audit(r.flight->records());
  EXPECT_GT(au.attacks, 0u);
  EXPECT_TRUE(au.all_accounted()) << trace::render(au);
  EXPECT_EQ(au.detected + au.lost, au.attacks);
}

// Same attacker, verification disarmed: the spoofed events sail through
// and the home actuates on fabricated provenance — the no-forged-actuation
// invariant must catch it. This is the control experiment proving the
// defended runs pass because of the integrity layer, not because the
// attacks were harmless.
TEST(ByzantineTest, UndefendedRunActuatesOnForgedEvents) {
  chaos::EngineOptions opt;
  opt.scenario.seed = 9;
  opt.plan.horizon = seconds(45);
  opt.plan.spoof_events = true;
  opt.byzantine_defense = false;
  chaos::ChaosResult r = chaos::ChaosEngine(opt).run();

  bool forged = false;
  for (const chaos::Violation& v : r.violations)
    if (v.invariant == "no-forged-actuation") forged = true;
  EXPECT_TRUE(forged)
      << "expected a forged actuation without the defense; got "
      << r.violations.size() << " violation(s)";
}

// Zero false positives: a run with no Byzantine categories armed audits
// to zero attacks and zero unattributed evidence (the CI golden gate).
TEST(ByzantineTest, NonAdversarialRunAuditsToZero) {
  chaos::EngineOptions opt;
  opt.scenario.seed = 3;
  opt.plan.horizon = seconds(45);
  opt.flight = true;
  chaos::ChaosResult r = chaos::ChaosEngine(opt).run();
  ASSERT_TRUE(r.flight != nullptr);

  EXPECT_EQ(r.byzantine_attacks, 0u);
  trace::Audit au = trace::audit(r.flight->records());
  EXPECT_EQ(au.attacks, 0u);
  EXPECT_EQ(au.findings.size(), 0u);
  EXPECT_TRUE(au.unattributed.empty());
  EXPECT_TRUE(au.all_accounted());
}

}  // namespace
}  // namespace riv
