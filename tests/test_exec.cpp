// Tests of the execution service (§5): placement, promotion/demotion along
// the chain, failover with Gapless backlog replay, recovery-triggered
// demotion, partitions (dual actives + idempotent/Test&Set actuation).
#include <gtest/gtest.h>

#include "core/exec/placement.hpp"
#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv {
namespace {

using workload::HomeDeployment;

constexpr AppId kApp{1};
constexpr SensorId kDoor{1};
constexpr ActuatorId kLight{1};

devices::SensorSpec door_sensor(double rate_hz = 10.0) {
  devices::SensorSpec spec;
  spec.id = kDoor;
  spec.name = "door";
  spec.kind = devices::SensorKind::kDoor;
  spec.tech = devices::Technology::kIp;
  spec.payload_size = 4;
  spec.rate_hz = rate_hz;
  return spec;
}

devices::ActuatorSpec light_actuator(bool idempotent = true,
                                     bool tas = false) {
  devices::ActuatorSpec spec;
  spec.id = kLight;
  spec.name = "light";
  spec.tech = devices::Technology::kIp;
  spec.idempotent = idempotent;
  spec.supports_test_and_set = tas;
  return spec;
}

TEST(Placement, PrefersProcessWithMostActiveDevices) {
  HomeDeployment::Options opt;
  opt.n_processes = 3;
  HomeDeployment home(opt);
  home.add_sensor(door_sensor(), {home.pid(2)});
  home.add_actuator(light_actuator(), {home.pid(2)});
  appmodel::AppGraph g =
      workload::apps::turn_light_on_off(kApp, kDoor, kLight);
  auto chain = core::placement_chain(g, home.bus(), home.processes());
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], home.pid(2));  // 2 active devices there
  EXPECT_EQ(chain[1], home.pid(0));  // then id order
  EXPECT_EQ(chain[2], home.pid(1));
}

TEST(Placement, TieBreaksOnProcessId) {
  HomeDeployment::Options opt;
  opt.n_processes = 3;
  HomeDeployment home(opt);
  home.add_sensor(door_sensor(), {home.pid(1)});
  home.add_actuator(light_actuator(), {home.pid(2)});
  appmodel::AppGraph g =
      workload::apps::turn_light_on_off(kApp, kDoor, kLight);
  auto chain = core::placement_chain(g, home.bus(), home.processes());
  EXPECT_EQ(chain[0], home.pid(1));  // 1 device each; lower id wins
  EXPECT_EQ(chain[1], home.pid(2));
}

struct ExecFixture : ::testing::Test {
  std::unique_ptr<HomeDeployment> make_home(
      int n, appmodel::Guarantee g = appmodel::Guarantee::kGapless,
      bool idempotent = true, bool tas = false, std::uint64_t seed = 31) {
    HomeDeployment::Options opt;
    opt.seed = seed;
    opt.n_processes = n;
    auto home = std::make_unique<HomeDeployment>(opt);
    // Sensor visible everywhere: every process can serve the app alone.
    home->add_sensor(door_sensor(), home->processes());
    home->add_actuator(light_actuator(idempotent, tas), home->processes());
    home->deploy(workload::apps::turn_light_on_off(kApp, kDoor, kLight, g));
    return home;
  }
};

TEST_F(ExecFixture, ExactlyOneActiveLogicInSteadyState) {
  auto home = make_home(5);
  home->start();
  home->run_for(seconds(5));
  int actives = 0;
  for (int i = 0; i < 5; ++i) actives += home->process(i).logic_active(kApp);
  EXPECT_EQ(actives, 1);
}

TEST_F(ExecFixture, FailoverPromotesNextInChain) {
  auto home = make_home(3);
  home->start();
  home->run_for(seconds(5));
  core::RivuletProcess* first = home->active_logic_process(kApp);
  ASSERT_NE(first, nullptr);
  first->crash();
  home->run_for(seconds(4));  // > 2 s detection
  core::RivuletProcess* second = home->active_logic_process(kApp);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second->id(), first->id());
  int actives = 0;
  for (int i = 0; i < 3; ++i) {
    if (home->process(i).up())
      actives += home->process(i).logic_active(kApp);
  }
  EXPECT_EQ(actives, 1);
}

TEST_F(ExecFixture, GaplessFailoverLosesNoEvents) {
  auto home = make_home(3);
  home->start();
  home->run_for(seconds(10));
  core::RivuletProcess* first = home->active_logic_process(kApp);
  ASSERT_NE(first, nullptr);
  first->crash();
  home->run_for(seconds(20));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  // Every emitted event is eventually processed by *some* active logic
  // node (duplicates possible at failover). The global metric survives
  // the crashed process's state teardown.
  std::uint64_t total = home->metrics().counter_value("app1.delivered");
  EXPECT_GE(total + 3, emitted);  // small in-flight allowance at horizon
}

TEST_F(ExecFixture, RecoveredHigherPriorityProcessReclaimsLeadership) {
  auto home = make_home(3);
  home->start();
  home->run_for(seconds(5));
  core::RivuletProcess* first = home->active_logic_process(kApp);
  ASSERT_NE(first, nullptr);
  ProcessId first_id = first->id();
  first->crash();
  home->run_for(seconds(4));
  ASSERT_NE(home->active_logic_process(kApp), nullptr);
  first->recover();
  home->run_for(seconds(4));
  core::RivuletProcess* now = home->active_logic_process(kApp);
  ASSERT_NE(now, nullptr);
  EXPECT_EQ(now->id(), first_id);  // §5: demote when the successor recovers
  int actives = 0;
  for (int i = 0; i < 3; ++i) actives += home->process(i).logic_active(kApp);
  EXPECT_EQ(actives, 1);
}

TEST_F(ExecFixture, PartitionCreatesActivesOnBothSides) {
  auto home = make_home(4);
  home->start();
  home->run_for(seconds(5));
  home->net().set_partition({{home->pid(0), home->pid(1)},
                             {home->pid(2), home->pid(3)}});
  home->run_for(seconds(5));
  int actives = 0;
  for (int i = 0; i < 4; ++i) actives += home->process(i).logic_active(kApp);
  EXPECT_EQ(actives, 2);  // §5: every partition side promotes its own
}

TEST_F(ExecFixture, PartitionHealLeavesExactlyOneActive)
{
  auto home = make_home(4);
  home->start();
  home->run_for(seconds(5));
  home->net().set_partition({{home->pid(0), home->pid(1)},
                             {home->pid(2), home->pid(3)}});
  home->run_for(seconds(5));
  home->net().heal_partition();
  home->run_for(seconds(5));
  int actives = 0;
  for (int i = 0; i < 4; ++i) actives += home->process(i).logic_active(kApp);
  EXPECT_EQ(actives, 1);
}

TEST_F(ExecFixture, DualActivesOnIdempotentActuatorAreHarmless) {
  auto home = make_home(4, appmodel::Guarantee::kGap, /*idempotent=*/true);
  home->start();
  home->run_for(seconds(5));
  home->net().set_partition({{home->pid(0), home->pid(1)},
                             {home->pid(2), home->pid(3)}});
  home->run_for(seconds(10));
  const devices::Actuator& light = home->bus().actuator(kLight);
  EXPECT_GT(light.actions(), 0u);
  EXPECT_EQ(light.unwarranted_actions(), 0u);  // idempotent: duplicates ok
}

TEST_F(ExecFixture, WholeHomeKeepsRunningAfterAnyTwoCrashes) {
  auto home = make_home(5);
  home->start();
  home->run_for(seconds(5));
  home->process(0).crash();
  home->process(1).crash();
  home->run_for(seconds(5));
  core::RivuletProcess* active = home->active_logic_process(kApp);
  ASSERT_NE(active, nullptr);
  std::uint64_t before = active->delivered(kApp);
  home->run_for(seconds(5));
  EXPECT_GT(active->delivered(kApp), before);  // still processing events
}

TEST_F(ExecFixture, LastSurvivorServesAlone) {
  auto home = make_home(3);
  home->start();
  home->run_for(seconds(5));
  home->process(0).crash();
  home->process(1).crash();
  home->run_for(seconds(5));
  EXPECT_TRUE(home->process(2).logic_active(kApp));
  std::uint64_t before = home->process(2).delivered(kApp);
  home->run_for(seconds(5));
  EXPECT_GT(home->process(2).delivered(kApp), before);
}

TEST_F(ExecFixture, CrashedProcessStopsActuating) {
  auto home = make_home(2);
  home->start();
  home->run_for(seconds(5));
  const devices::Actuator& light = home->bus().actuator(kLight);
  home->process(0).crash();
  home->process(1).crash();
  home->run_for(seconds(1));
  std::uint64_t frozen = light.actions();
  home->run_for(seconds(5));
  EXPECT_EQ(light.actions(), frozen);  // nobody left to actuate
}

}  // namespace
}  // namespace riv

// --- appended: placement-policy extension ---------------------------------

namespace riv {
namespace {

TEST(PlacementPolicy, LoadBalancedPrefersIdleProcess) {
  HomeDeployment::Options opt;
  opt.n_processes = 3;
  HomeDeployment home(opt);
  home.add_sensor(door_sensor(), {home.pid(0)});
  home.add_actuator(light_actuator(), {home.pid(0)});
  appmodel::AppGraph g =
      workload::apps::turn_light_on_off(kApp, kDoor, kLight);
  // Without load, p1 wins (it has both devices).
  auto idle = core::placement_chain(g, home.bus(), home.processes(),
                                    core::PlacementPolicy::kLoadBalanced);
  EXPECT_EQ(idle[0], home.pid(0));
  // With p1 already loaded, the balanced policy moves the head elsewhere.
  std::map<ProcessId, int> load{{home.pid(0), 2}};
  auto busy = core::placement_chain(g, home.bus(), home.processes(),
                                    core::PlacementPolicy::kLoadBalanced,
                                    load);
  EXPECT_NE(busy[0], home.pid(0));
  // The paper policy ignores load entirely.
  auto paper = core::placement_chain(
      g, home.bus(), home.processes(),
      core::PlacementPolicy::kMaxActiveDevices, load);
  EXPECT_EQ(paper[0], home.pid(0));
}

TEST(PlacementPolicy, RuntimeSpreadsAppsAcrossProcesses) {
  HomeDeployment::Options opt;
  opt.seed = 85;
  opt.n_processes = 3;
  opt.config.placement_policy = core::PlacementPolicy::kLoadBalanced;
  HomeDeployment home(opt);
  for (std::uint16_t i = 1; i <= 6; ++i) {
    devices::SensorSpec spec = door_sensor();
    spec.id = SensorId{i};
    home.add_sensor(spec, home.processes());
    appmodel::AppBuilder app(AppId{i}, "a" + std::to_string(i));
    auto op = app.add_operator("Sink");
    op.add_sensor(SensorId{i}, appmodel::Guarantee::kGap,
                  appmodel::WindowSpec::count_window(1));
    op.handle_triggered_window(
        [](const std::vector<appmodel::StreamWindow>&,
           appmodel::TriggerContext&) {});
    home.deploy(app.build());
  }
  home.start();
  home.run_for(seconds(3));
  // 6 apps over 3 processes: exactly 2 active logic nodes each.
  for (int p = 0; p < 3; ++p) {
    int active = 0;
    for (std::uint16_t i = 1; i <= 6; ++i)
      active += home.process(p).logic_active(AppId{i});
    EXPECT_EQ(active, 2) << "process " << p;
  }
}

}  // namespace
}  // namespace riv
