// Unit tests for the discrete-event simulation kernel and stable store.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "sim/stable_store.hpp"

namespace riv::sim {
namespace {

TEST(Simulation, FiresInTimeOrder) {
  Simulation sim(1);
  std::vector<int> order;
  sim.schedule_at(TimePoint{300}, [&] { order.push_back(3); });
  sim.schedule_at(TimePoint{100}, [&] { order.push_back(1); });
  sim.schedule_at(TimePoint{200}, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint{300});
}

TEST(Simulation, TiesBreakByScheduleOrder) {
  Simulation sim(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(TimePoint{50}, [&order, i] { order.push_back(i); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim(1);
  bool fired = false;
  TimerId id = sim.schedule_after(seconds(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelIsIdempotent) {
  Simulation sim(1);
  TimerId id = sim.schedule_after(seconds(1), [] {});
  sim.cancel(id);
  sim.cancel(id);  // no-op
  sim.run_all();
}

TEST(Simulation, RunUntilAdvancesClockWithoutEvents) {
  Simulation sim(1);
  sim.run_until(TimePoint{seconds(5).us});
  EXPECT_EQ(sim.now().seconds(), 5.0);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim(1);
  int fired = 0;
  sim.schedule_at(TimePoint{100}, [&] { ++fired; });
  sim.schedule_at(TimePoint{200}, [&] { ++fired; });
  sim.run_until(TimePoint{150});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint{150});
  sim.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim(1);
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(milliseconds(1), recurse);
  };
  sim.schedule_after(milliseconds(1), recurse);
  sim.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), TimePoint{milliseconds(10).us});
}

TEST(ProcessTimers, CancelAllStopsEverything) {
  Simulation sim(1);
  int fired = 0;
  {
    ProcessTimers timers(sim);
    for (int i = 1; i <= 10; ++i)
      timers.schedule_after(milliseconds(i), [&] { ++fired; });
    timers.cancel_all();
  }
  sim.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(ProcessTimers, DestructionCancelsPending) {
  Simulation sim(1);
  int fired = 0;
  {
    ProcessTimers timers(sim);
    timers.schedule_after(milliseconds(5), [&] { ++fired; });
  }  // destructor must cancel — the lambda would dangle otherwise
  sim.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(ProcessTimers, IndividualCancel) {
  Simulation sim(1);
  int fired = 0;
  ProcessTimers timers(sim);
  TimerId a = timers.schedule_after(milliseconds(1), [&] { fired += 1; });
  timers.schedule_after(milliseconds(2), [&] { fired += 10; });
  timers.cancel(a);
  sim.run_all();
  EXPECT_EQ(fired, 10);
}

TEST(ProcessTimers, SurvivesManyTimers) {
  Simulation sim(1);
  ProcessTimers timers(sim);
  int fired = 0;
  for (int i = 0; i < 1000; ++i)
    timers.schedule_after(microseconds(i + 1), [&] { ++fired; });
  sim.run_all();
  EXPECT_EQ(fired, 1000);
}

TEST(StableStore, PutGetErase) {
  StableStore store;
  store.put("k", {std::byte{1}, std::byte{2}});
  ASSERT_TRUE(store.get("k").has_value());
  EXPECT_EQ(store.get("k")->size(), 2u);
  EXPECT_FALSE(store.get("missing").has_value());
  store.erase("k");
  EXPECT_FALSE(store.contains("k"));
}

TEST(StableStore, PrefixScanIsSortedAndScoped) {
  StableStore store;
  store.put("app1/ev/3", {});
  store.put("app1/ev/1", {});
  store.put("app1/hw/1", {});
  store.put("app2/ev/1", {});
  auto keys = store.keys_with_prefix("app1/ev/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "app1/ev/1");
  EXPECT_EQ(keys[1], "app1/ev/3");
}

TEST(StableStore, OverwriteReplacesValue) {
  StableStore store;
  store.put("k", {std::byte{1}});
  store.put("k", {std::byte{2}, std::byte{3}});
  EXPECT_EQ(store.get("k")->size(), 2u);
}

}  // namespace
}  // namespace riv::sim
