// Tests for the causal-provenance analyzer (src/trace/provenance):
// synthetic traces with known shapes exercise chain reconstruction, leg
// latencies, orphan classification, duplicate detection, fault
// attribution and the health check; a live deployment run then proves the
// real emit sites produce a causally sound trace end-to-end.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "trace/provenance.hpp"
#include "trace/trace.hpp"
#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv {
namespace {

using namespace riv::trace;

Record rec(std::int64_t us, std::uint16_t pid, Component c, Kind k,
           ProvenanceId prov, std::string detail) {
  return Record{TimePoint{us}, ProcessId{pid}, c, k, prov,
                std::move(detail)};
}

// One event walking the full pipeline with per-leg gaps of 2..7 µs. All
// legs stay under 16 µs where histogram buckets are exact, so the
// assertions below are equalities, not tolerances.
std::vector<Record> full_pipeline(ProvenanceId id, std::int64_t base) {
  return {
      rec(base + 0, 0, Component::kDevice, Kind::kEmit, id, "event=x"),
      rec(base + 2, 1, Component::kDevice, Kind::kAdapterRx, id,
          "event=x up=1"),
      rec(base + 5, 1, Component::kDelivery, Kind::kIngest, id,
          "app=1 event=x src=device"),
      rec(base + 9, 1, Component::kRuntime, Kind::kDeliver, id,
          "app=1 event=x"),
      rec(base + 14, 1, Component::kRuntime, Kind::kLogicFire, id,
          "app=1 op=light"),
      rec(base + 20, 1, Component::kRuntime, Kind::kCommand, id,
          "cmd=p1!1 actuator=a1"),
      rec(base + 27, 0, Component::kDevice, Kind::kActuated, id,
          "cmd=p1!1 actuator=a1 accepted=1 dup=0"),
  };
}

TEST(ProvenanceAnalyze, ReconstructsChainAndLegLatencies) {
  std::vector<Record> records = full_pipeline(ProvenanceId{1, 1}, 0);
  Analysis a = analyze(records);

  EXPECT_EQ(a.n_chains, 1u);
  EXPECT_EQ(a.stages_present(), kStageCount);
  for (int i = 0; i < kStageCount; ++i)
    EXPECT_EQ(a.stage_chains[static_cast<std::size_t>(i)], 1u);

  // Legs are exactly the constructed gaps (sub-16µs buckets are exact).
  const std::int64_t want[kStageCount] = {0, 2, 3, 4, 5, 6, 7};
  for (int i = 1; i < kStageCount; ++i) {
    ASSERT_EQ(a.leg[static_cast<std::size_t>(i)].count(), 1u) << i;
    EXPECT_EQ(a.leg[static_cast<std::size_t>(i)].percentile(0.5).us,
              want[i])
        << to_string(static_cast<Stage>(i));
  }
  ASSERT_EQ(a.e2e_delivery.count(), 1u);
  EXPECT_EQ(a.e2e_delivery.max().us, 9);
  ASSERT_EQ(a.e2e_full.count(), 1u);
  EXPECT_EQ(a.e2e_full.max().us, 27);

  EXPECT_TRUE(a.orphans.empty());
  EXPECT_TRUE(a.duplicates.empty());
  EXPECT_TRUE(a.ordering_violations.empty());
  EXPECT_TRUE(check(a).ok);
}

TEST(ProvenanceAnalyze, ClassifiesOrphans) {
  AnalyzeOptions opt;
  opt.grace = seconds(5);
  std::vector<Record> records;
  // Orphan 1: ingested one second before the trace ends — in flight.
  records.push_back(rec(seconds(19).us, 1, Component::kDelivery,
                        Kind::kIngest, ProvenanceId{1, 1},
                        "app=1 event=a src=device"));
  // Orphan 2: ingested early, but its only host crashed and stayed down.
  records.push_back(rec(seconds(1).us, 2, Component::kDelivery,
                        Kind::kIngest, ProvenanceId{1, 2},
                        "app=1 event=b src=device"));
  records.push_back(rec(seconds(2).us, 2, Component::kRuntime,
                        Kind::kCrash, ProvenanceId{}, ""));
  // Orphan 3: ingested early, host alive the whole time — a real bug.
  records.push_back(rec(seconds(1).us, 3, Component::kDelivery,
                        Kind::kIngest, ProvenanceId{1, 3},
                        "app=1 event=c src=device"));
  // Push the end of the trace out to t=20s.
  records.push_back(rec(seconds(20).us, 0, Component::kChaos, Kind::kMark,
                        ProvenanceId{}, "end"));

  Analysis a = analyze(records, opt);
  ASSERT_EQ(a.orphans.size(), 3u);
  EXPECT_EQ(a.unexplained_orphans(), 1u);
  for (const Orphan& o : a.orphans) {
    if (o.id == ProvenanceId{1, 1})
      EXPECT_EQ(o.reason, "in_flight_at_end");
    if (o.id == ProvenanceId{1, 2}) EXPECT_EQ(o.reason, "crashed_host");
    if (o.id == ProvenanceId{1, 3}) EXPECT_EQ(o.reason, "unexplained");
  }
  CheckResult cr = check(a);
  EXPECT_FALSE(cr.ok);
  ASSERT_EQ(cr.problems.size(), 1u);
  EXPECT_NE(cr.problems[0].find("unexplained orphan"), std::string::npos);

  // A recovered host is not a crashed host: orphan 2 becomes unexplained.
  records.push_back(rec(seconds(20).us + 1, 2, Component::kRuntime,
                        Kind::kRecover, ProvenanceId{}, ""));
  Analysis b = analyze(records, opt);
  EXPECT_EQ(b.unexplained_orphans(), 2u);
}

TEST(ProvenanceAnalyze, DetectsDuplicatesWithinOnePromotionEpoch) {
  ProvenanceId id{1, 5};
  std::vector<Record> records;
  records.push_back(rec(100, 1, Component::kRuntime, Kind::kPromote,
                        ProvenanceId{}, "app=1"));
  records.push_back(
      rec(200, 1, Component::kRuntime, Kind::kDeliver, id, "app=1 event=x"));
  // Failover: p2 promoted, re-delivery there is legitimate.
  records.push_back(rec(300, 2, Component::kRuntime, Kind::kPromote,
                        ProvenanceId{}, "app=1"));
  records.push_back(
      rec(400, 2, Component::kRuntime, Kind::kDeliver, id, "app=1 event=x"));
  Analysis clean = analyze(records);
  EXPECT_TRUE(clean.duplicates.empty());

  // Same event again to p2 with no intervening promotion: a duplicate.
  records.push_back(
      rec(500, 2, Component::kRuntime, Kind::kDeliver, id, "app=1 event=x"));
  Analysis dirty = analyze(records);
  ASSERT_EQ(dirty.duplicates.size(), 1u);
  EXPECT_EQ(dirty.duplicates[0].id, id);
  EXPECT_EQ(dirty.duplicates[0].process, ProcessId{2});
  EXPECT_EQ(dirty.duplicates[0].deliveries, 2u);
  EXPECT_FALSE(check(dirty).ok);

  // A promotion between repeats resets the epoch: no duplicate.
  records.pop_back();
  records.push_back(rec(450, 2, Component::kRuntime, Kind::kPromote,
                        ProvenanceId{}, "app=1"));
  records.push_back(
      rec(500, 2, Component::kRuntime, Kind::kDeliver, id, "app=1 event=x"));
  EXPECT_TRUE(analyze(records).duplicates.empty());
}

TEST(ProvenanceAnalyze, AttributesTailLatencyToOverlappingFaults) {
  std::vector<Record> records;
  // Three fast events early on (1 ms e2e each).
  for (std::uint32_t i = 1; i <= 3; ++i) {
    ProvenanceId id{1, i};
    std::int64_t base = static_cast<std::int64_t>(i) * 100000;
    records.push_back(
        rec(base, 0, Component::kDevice, Kind::kEmit, id, "event=f"));
    records.push_back(rec(base + 1000, 1, Component::kRuntime,
                          Kind::kDeliver, id, "app=1 event=f"));
  }
  // One slow event spanning an injected fault: generated at 10s,
  // partition at 15s, finally delivered at 30s.
  ProvenanceId slow{1, 9};
  records.push_back(rec(seconds(10).us, 0, Component::kDevice, Kind::kEmit,
                        slow, "event=s"));
  records.push_back(rec(seconds(15).us, 0, Component::kChaos, Kind::kFault,
                        ProvenanceId{}, "id=3 partition {p1} | {p2 p3}"));
  records.push_back(rec(seconds(30).us, 1, Component::kRuntime,
                        Kind::kDeliver, slow, "app=1 event=s"));

  Analysis a = analyze(records);
  ASSERT_EQ(a.faults.size(), 1u);
  EXPECT_EQ(a.faults[0].fault_id, 3);
  ASSERT_FALSE(a.tails.empty());
  // Tails are sorted slowest-first; the slow chain leads and carries the
  // fault id, while the fast chains (if present at the threshold) do not.
  EXPECT_EQ(a.tails[0].id, slow);
  ASSERT_EQ(a.tails[0].fault_ids.size(), 1u);
  EXPECT_EQ(a.tails[0].fault_ids[0], 3);
  for (std::size_t i = 1; i < a.tails.size(); ++i)
    EXPECT_TRUE(a.tails[i].fault_ids.empty());
}

TEST(ProvenanceAnalyze, FlagsStageOrderingViolations) {
  ProvenanceId id{1, 7};
  std::vector<Record> records;
  records.push_back(
      rec(5000, 1, Component::kRuntime, Kind::kDeliver, id, "app=1 event=x"));
  records.push_back(rec(9000, 1, Component::kDelivery, Kind::kIngest, id,
                        "app=1 event=x src=device"));
  Analysis a = analyze(records);
  ASSERT_EQ(a.ordering_violations.size(), 1u);
  EXPECT_NE(a.ordering_violations[0].find("delivered"), std::string::npos);
  EXPECT_FALSE(check(a).ok);
}

TEST(ProvenanceAnalyze, RendersHumanAndJsonReports) {
  std::vector<Record> records = full_pipeline(ProvenanceId{1, 1}, 0);
  Analysis a = analyze(records);

  std::string text = render(a);
  EXPECT_NE(text.find("stage coverage"), std::string::npos);
  EXPECT_NE(text.find("generated"), std::string::npos);
  EXPECT_NE(text.find("e2e generated -> delivered"), std::string::npos);
  EXPECT_NE(text.find("orphans: 0"), std::string::npos);

  std::string json = render_json(a);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"chains\":1"), std::string::npos);
  EXPECT_NE(json.find("\"e2e_delivery\""), std::string::npos);
  EXPECT_NE(json.find("\"ordering_violations\":[]"), std::string::npos);
}

// A real deployment: the paper's door -> light app on three processes,
// with the flight recorder on. The emit sites across devices, delivery,
// runtime and logic must together produce a causally sound trace that the
// analyzer reconstructs end-to-end.
TEST(ProvenanceLive, GaplessPipelineProducesHealthyChains) {
  auto recorder = std::make_shared<trace::Recorder>(
      trace::kAllComponents &
      ~trace::component_bit(trace::Component::kSim));
  Analysis a;
  {
    trace::Scope scope(*recorder);

    workload::HomeDeployment::Options opt;
    opt.seed = 11;
    opt.n_processes = 3;
    workload::HomeDeployment home(opt);

    devices::SensorSpec spec;
    spec.id = SensorId{1};
    spec.name = "door";
    spec.kind = devices::SensorKind::kDoor;
    spec.tech = devices::Technology::kIp;
    spec.rate_hz = 5.0;
    home.add_sensor(spec, {home.pid(0), home.pid(1)});

    devices::ActuatorSpec light;
    light.id = ActuatorId{1};
    light.name = "light";
    light.tech = devices::Technology::kIp;
    home.add_actuator(light, {home.pid(0)});
    home.deploy(workload::apps::turn_light_on_off(
        AppId{1}, SensorId{1}, ActuatorId{1},
        appmodel::Guarantee::kGapless));

    home.start();
    home.run_for(seconds(10));
    home.drain_to_quiescence();
    a = analyze(recorder->records());
  }

  EXPECT_GT(a.n_chains, 10u);
  // The full loop closes: every stage from generated to actuated appears.
  EXPECT_GE(a.stages_present(), 5);
  EXPECT_EQ(a.unexplained_orphans(), 0u);
  EXPECT_TRUE(a.duplicates.empty());
  EXPECT_TRUE(a.ordering_violations.empty()) << a.ordering_violations[0];
  EXPECT_TRUE(check(a).ok);

  // Where-the-time-went accounting: on a fault-free run the summed leg
  // medians on the delivery path agree with the measured end-to-end
  // median within a small factor (medians are not strictly additive).
  ASSERT_FALSE(a.e2e_delivery.empty());
  std::int64_t sum_legs = 0;
  for (int i = 1; i <= static_cast<int>(Stage::kDelivered); ++i)
    sum_legs += a.leg[static_cast<std::size_t>(i)].percentile(0.5).us;
  std::int64_t e2e = a.e2e_delivery.percentile(0.5).us;
  EXPECT_GT(sum_legs, 0);
  EXPECT_GT(e2e, 0);
  EXPECT_LT(sum_legs, e2e * 3);
  EXPECT_LT(e2e, sum_legs * 3);
}

// The blessed chaos golden exercises crashes, partitions and fallback
// paths; the analyzer must still find a causally healthy trace there.
TEST(ProvenanceLive, ChaosGoldenPassesCheck) {
  trace::Recorder golden;
  std::string err;
  ASSERT_TRUE(trace::Recorder::load(
      std::string(RIV_TRACE_GOLDEN_DIR) + "/chaos_flight.rivtrace",
      &golden, &err))
      << err;
  Analysis a = analyze(golden.records());
  EXPECT_GE(a.stages_present(), 5);
  EXPECT_GT(a.n_chains, 0u);
  EXPECT_FALSE(a.faults.empty());
  CheckResult cr = check(a);
  EXPECT_TRUE(cr.ok) << (cr.problems.empty() ? "" : cr.problems[0]);
}

}  // namespace
}  // namespace riv
