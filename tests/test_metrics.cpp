// Tests for the measurement infrastructure the benches rely on.
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"

namespace riv::metrics {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(LatencyRecorder, MeanAndPercentiles) {
  LatencyRecorder r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.mean(), Duration{});
  for (int i = 1; i <= 100; ++i) r.record(milliseconds(i));
  EXPECT_EQ(r.count(), 100u);
  EXPECT_EQ(r.mean(), Duration{50500});
  EXPECT_EQ(r.percentile(0.5), milliseconds(51));  // index round(0.5*99)=50
  EXPECT_EQ(r.percentile(0.0), milliseconds(1));
  EXPECT_EQ(r.percentile(1.0), milliseconds(100));
  EXPECT_EQ(r.max(), milliseconds(100));
}

TEST(LatencyRecorder, PercentileUnaffectedByInsertionOrder) {
  LatencyRecorder a, b;
  for (int i = 1; i <= 9; ++i) a.record(milliseconds(i));
  for (int i = 9; i >= 1; --i) b.record(milliseconds(i));
  EXPECT_EQ(a.percentile(0.5), b.percentile(0.5));
}

TEST(TimeSeries, BinnedLastHoldsPriorValue) {
  TimeSeries s;
  s.append(TimePoint{seconds(1).us}, 10);
  s.append(TimePoint{seconds(1).us + 1}, 11);
  s.append(TimePoint{seconds(3).us}, 30);
  auto bins = s.binned_last(seconds(1), TimePoint{seconds(4).us});
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_EQ(bins[0].v, 10);  // t=1: the 1s+1us sample is after the bin
  EXPECT_EQ(bins[1].v, 11);  // t=2: holds the latest
  EXPECT_EQ(bins[2].v, 30);  // t=3
  EXPECT_EQ(bins[3].v, 30);  // t=4: holds
}

TEST(TimeSeries, EmptySeriesBinsToZero) {
  TimeSeries s;
  auto bins = s.binned_last(seconds(1), TimePoint{seconds(2).us});
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].v, 0.0);
}

TEST(Registry, CountersCreatedOnFirstUse) {
  Registry reg;
  EXPECT_EQ(reg.counter_value("never.touched"), 0u);
  reg.counter("net.bytes.ring_event").add(100);
  reg.counter("net.bytes.keepalive").add(50);
  EXPECT_EQ(reg.counter_value("net.bytes.ring_event"), 100u);
}

TEST(Registry, PrefixSum) {
  Registry reg;
  reg.counter("net.bytes.a").add(1);
  reg.counter("net.bytes.b").add(2);
  reg.counter("net.msgs.a").add(100);
  EXPECT_EQ(reg.counter_sum("net.bytes."), 3u);
  EXPECT_EQ(reg.counter_sum("net."), 103u);
  EXPECT_EQ(reg.counter_sum("nope"), 0u);
}

TEST(Registry, ResetClearsEverything) {
  Registry reg;
  reg.counter("c").add(5);
  reg.latency("l").record(milliseconds(1));
  reg.series("s").append(TimePoint{1}, 1.0);
  reg.reset();
  EXPECT_EQ(reg.counter_value("c"), 0u);
  EXPECT_TRUE(reg.latency("l").empty());
  EXPECT_TRUE(reg.series("s").points().empty());
}

}  // namespace
}  // namespace riv::metrics
