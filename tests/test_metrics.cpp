// Tests for the measurement infrastructure the benches rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "metrics/metrics.hpp"

namespace riv::metrics {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ExactLatencyRecorder, MeanAndPercentiles) {
  ExactLatencyRecorder r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.mean(), Duration{});
  for (int i = 1; i <= 100; ++i) r.record(milliseconds(i));
  EXPECT_EQ(r.count(), 100u);
  EXPECT_EQ(r.mean(), Duration{50500});
  EXPECT_EQ(r.percentile(0.5), milliseconds(51));  // index round(0.5*99)=50
  EXPECT_EQ(r.percentile(0.0), milliseconds(1));
  EXPECT_EQ(r.percentile(1.0), milliseconds(100));
  EXPECT_EQ(r.max(), milliseconds(100));
}

// The histogram-backed recorder: count, mean, min and max stay exact;
// interior percentiles carry at most the bucketing error (1/16 relative).
TEST(LatencyRecorder, ExactStatsAndBoundedPercentileError) {
  LatencyRecorder r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.mean(), Duration{});
  for (int i = 1; i <= 100; ++i) r.record(milliseconds(i));
  EXPECT_EQ(r.count(), 100u);
  EXPECT_EQ(r.mean(), Duration{50500});
  EXPECT_EQ(r.max(), milliseconds(100));
  // Exact answers are 51ms / 1ms / 100ms; percentiles report the bucket
  // upper bound, so allow the 6.25% bucket width.
  EXPECT_NEAR(static_cast<double>(r.percentile(0.5).us), 51000.0,
              51000.0 / 16.0);
  EXPECT_NEAR(static_cast<double>(r.percentile(0.0).us), 1000.0,
              1000.0 / 16.0);
  EXPECT_EQ(r.percentile(1.0), milliseconds(100));  // clamped to max
}

TEST(LatencyRecorder, PercentileUnaffectedByInsertionOrder) {
  LatencyRecorder a, b;
  for (int i = 1; i <= 9; ++i) a.record(milliseconds(i));
  for (int i = 9; i >= 1; --i) b.record(milliseconds(i));
  EXPECT_EQ(a.percentile(0.5), b.percentile(0.5));
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::int64_t v = 0; v < 16; ++v) h.record_us(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), Duration{0});
  EXPECT_EQ(h.max(), Duration{15});
  // Below 16 µs every value has its own bucket, so percentiles are exact:
  // the median rank of 16 samples 0..15 is the 8th smallest, value 7.
  EXPECT_EQ(h.percentile(0.0), Duration{0});
  EXPECT_EQ(h.percentile(1.0), Duration{15});
  EXPECT_EQ(h.percentile(0.5).us, 7);
}

TEST(Histogram, PercentileErrorIsBoundedAcrossMagnitudes) {
  // Compare against the exact recorder over four decades of values.
  Histogram h;
  ExactLatencyRecorder exact;
  std::uint64_t x = 88172645463325252ULL;  // xorshift
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    std::int64_t v = static_cast<std::int64_t>(x % 10'000'000);  // < 10s
    h.record_us(v);
    exact.record(Duration{v});
  }
  EXPECT_EQ(h.count(), exact.count());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    double want = static_cast<double>(exact.percentile(q).us);
    double got = static_cast<double>(h.percentile(q).us);
    EXPECT_NEAR(got, want, want / 16.0 + 1.0) << "q=" << q;
  }
}

TEST(Histogram, NegativeClampsAndHugeValuesOverflow) {
  Histogram h;
  h.record_us(-5);  // clamped to zero, still counted
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), Duration{0});

  h.record_us(Histogram::kMaxTrackable + 1);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 2u);
  // The overflow sample still drives exact max, and the top percentile
  // reports it.
  EXPECT_EQ(h.max().us, Histogram::kMaxTrackable + 1);
  EXPECT_EQ(h.percentile(1.0).us, Histogram::kMaxTrackable + 1);
}

TEST(Histogram, MergeMatchesRecordingIntoOne) {
  Histogram a, b, all;
  for (int i = 1; i <= 500; ++i) {
    std::int64_t v = i * 97;
    a.record_us(v);
    all.record_us(v);
  }
  for (int i = 1; i <= 300; ++i) {
    std::int64_t v = i * 1031;
    b.record_us(v);
    all.record_us(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.mean(), all.mean());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (double q : {0.25, 0.5, 0.75, 0.99})
    EXPECT_EQ(a.percentile(q), all.percentile(q)) << "q=" << q;
}

TEST(Histogram, MergeIntoEmptyAndEmptyIntoFull) {
  Histogram a, b;
  b.record_us(123);
  a.merge(b);  // empty <- full
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), Duration{123});
  Histogram none;
  a.merge(none);  // full <- empty must not disturb min/max
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), Duration{123});
  EXPECT_EQ(a.max(), Duration{123});
}

TEST(TimeSeries, BinnedLastHoldsPriorValue) {
  TimeSeries s;
  s.append(TimePoint{seconds(1).us}, 10);
  s.append(TimePoint{seconds(1).us + 1}, 11);
  s.append(TimePoint{seconds(3).us}, 30);
  auto bins = s.binned_last(seconds(1), TimePoint{seconds(4).us});
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_EQ(bins[0].v, 10);  // t=1: the 1s+1us sample is after the bin
  EXPECT_EQ(bins[1].v, 11);  // t=2: holds the latest
  EXPECT_EQ(bins[2].v, 30);  // t=3
  EXPECT_EQ(bins[3].v, 30);  // t=4: holds
}

TEST(TimeSeries, EmptySeriesBinsToZero) {
  TimeSeries s;
  auto bins = s.binned_last(seconds(1), TimePoint{seconds(2).us});
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].v, 0.0);
}

TEST(TimeSeries, SampleExactlyOnBinBoundaryLandsInThatBin) {
  TimeSeries s;
  s.append(TimePoint{seconds(1).us}, 7);
  s.append(TimePoint{seconds(2).us}, 8);
  auto bins = s.binned_last(seconds(1), TimePoint{seconds(2).us});
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].v, 7);  // t=1s sample is <= the 1s bin edge
  EXPECT_EQ(bins[1].v, 8);
}

TEST(TimeSeries, EndBeforeFirstBinYieldsNothing) {
  TimeSeries s;
  s.append(TimePoint{10}, 1);
  auto bins = s.binned_last(seconds(1), TimePoint{seconds(1).us - 1});
  EXPECT_TRUE(bins.empty());
  EXPECT_TRUE(s.binned_last(seconds(1), TimePoint{}).empty());
}

TEST(TimeSeries, EndBeforeFirstSampleHoldsZero) {
  TimeSeries s;
  s.append(TimePoint{seconds(10).us}, 99);
  auto bins = s.binned_last(seconds(1), TimePoint{seconds(3).us});
  ASSERT_EQ(bins.size(), 3u);
  for (const auto& b : bins) EXPECT_EQ(b.v, 0.0);
}

TEST(TimeSeries, EndNotAMultipleOfBinTruncates) {
  TimeSeries s;
  s.append(TimePoint{seconds(1).us}, 5);
  auto bins =
      s.binned_last(seconds(1), TimePoint{seconds(2).us + 500'000});
  // Bins land at 1s and 2s; the half-open remainder gets no bin.
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[1].t.us, seconds(2).us);
  EXPECT_EQ(bins[1].v, 5);
}

TEST(TimeSeries, MergeFromInterleavesInTimeOrder) {
  TimeSeries a, b;
  a.append(TimePoint{10}, 1);
  a.append(TimePoint{30}, 3);
  b.append(TimePoint{20}, 2);
  a.merge_from(b);
  ASSERT_EQ(a.points().size(), 3u);
  EXPECT_EQ(a.points()[0].v, 1);
  EXPECT_EQ(a.points()[1].v, 2);
  EXPECT_EQ(a.points()[2].v, 3);
}

TEST(Registry, MergeFromAggregatesAllKinds) {
  Registry a, b;
  a.counter("c").add(1);
  b.counter("c").add(2);
  b.counter("only_b").add(7);
  a.latency("l").record(milliseconds(1));
  b.latency("l").record(milliseconds(3));
  b.series("s").append(TimePoint{5}, 1.0);
  a.merge_from(b);
  EXPECT_EQ(a.counter_value("c"), 3u);
  EXPECT_EQ(a.counter_value("only_b"), 7u);
  EXPECT_EQ(a.latency("l").count(), 2u);
  EXPECT_EQ(a.latency("l").max(), milliseconds(3));
  EXPECT_EQ(a.series("s").points().size(), 1u);
}

TEST(SnapshotTimeline, CaptureAndCsv) {
  Registry reg;
  reg.counter("x").add(4);
  SnapshotTimeline t;
  EXPECT_TRUE(t.empty());
  t.capture(TimePoint{seconds(1).us}, ProcessId{2}, reg);
  reg.counter("x").add(1);
  t.capture(TimePoint{seconds(2).us}, ProcessId{2}, reg);
  ASSERT_EQ(t.rows().size(), 2u);
  EXPECT_EQ(t.rows()[1].value, 5u);
  EXPECT_EQ(t.to_csv(),
            "time_us,process,counter,value\n"
            "1000000,2,x,4\n"
            "2000000,2,x,5\n");
}

TEST(Registry, CountersCreatedOnFirstUse) {
  Registry reg;
  EXPECT_EQ(reg.counter_value("never.touched"), 0u);
  reg.counter("net.bytes.ring_event").add(100);
  reg.counter("net.bytes.keepalive").add(50);
  EXPECT_EQ(reg.counter_value("net.bytes.ring_event"), 100u);
}

TEST(Registry, PrefixSum) {
  Registry reg;
  reg.counter("net.bytes.a").add(1);
  reg.counter("net.bytes.b").add(2);
  reg.counter("net.msgs.a").add(100);
  EXPECT_EQ(reg.counter_sum("net.bytes."), 3u);
  EXPECT_EQ(reg.counter_sum("net."), 103u);
  EXPECT_EQ(reg.counter_sum("nope"), 0u);
}

namespace {
// Exact scalar equality: every counter value and every latency histogram
// bucket/count/sum/min/max, bit for bit. What merge-order invariance means.
void expect_scalars_equal(const Registry& a, const Registry& b) {
  ASSERT_EQ(a.counters().size(), b.counters().size());
  for (const auto& [name, counter] : a.counters())
    EXPECT_EQ(counter.value(), b.counter_value(name)) << name;
  ASSERT_EQ(a.latencies().size(), b.latencies().size());
  for (const auto& [name, lat] : a.latencies()) {
    auto it = b.latencies().find(name);
    ASSERT_NE(it, b.latencies().end()) << name;
    const Histogram& ha = lat.hist();
    const Histogram& hb = it->second.hist();
    EXPECT_EQ(ha.count(), hb.count()) << name;
    EXPECT_EQ(ha.sum_us(), hb.sum_us()) << name;
    EXPECT_EQ(ha.min(), hb.min()) << name;
    EXPECT_EQ(ha.max(), hb.max()) << name;
    EXPECT_EQ(ha.overflow(), hb.overflow()) << name;
    EXPECT_EQ(ha.buckets(), hb.buckets()) << name;
  }
}
}  // namespace

// merge_scalars_from is the basis of fleet-scale aggregation: worker
// threads fold shard registries in whatever grouping the shard layout
// dictates, and the fleet result must not depend on it. Counter adds and
// bucket-wise histogram adds are exactly associative and commutative, so
// folding 1k randomized registries left-to-right, in reverse, in a
// shuffled order, and as a two-level tree must agree bit for bit.
TEST(Registry, MergeScalarsOrderInvariantOver1kRandomRegistries) {
  constexpr int kRegistries = 1000;
  Rng rng(2026);
  const char* names[] = {"app1.delivered", "app1.delay", "net.bytes.ring",
                         "net.bytes.rb",   "dev.emitted", "proc.crashes"};
  std::vector<Registry> regs(kRegistries);
  for (Registry& reg : regs) {
    int n_counters = static_cast<int>(rng.uniform_int(5));
    for (int c = 0; c < n_counters; ++c)
      reg.counter(names[rng.uniform_int(6)]).add(rng.uniform_int(1'000'000));
    int n_samples = static_cast<int>(rng.uniform_int(9));
    for (int s = 0; s < n_samples; ++s)
      reg.latency(names[rng.uniform_int(6)])
          .record(microseconds(static_cast<std::int64_t>(
              rng.uniform_int(60'000'000))));
  }

  Registry forward;
  for (const Registry& reg : regs) forward.merge_scalars_from(reg);

  Registry backward;
  for (auto it = regs.rbegin(); it != regs.rend(); ++it)
    backward.merge_scalars_from(*it);
  expect_scalars_equal(forward, backward);

  // Deterministically shuffled order.
  std::vector<std::size_t> order(regs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_int(i)]);
  Registry shuffled;
  for (std::size_t i : order) shuffled.merge_scalars_from(regs[i]);
  expect_scalars_equal(forward, shuffled);

  // Two-level tree: shard-local folds, then a fold of the folds — the
  // exact shape the fleet runner uses.
  Registry tree;
  for (std::size_t first = 0; first < regs.size(); first += 64) {
    Registry shard;
    for (std::size_t i = first; i < std::min(first + 64, regs.size()); ++i)
      shard.merge_scalars_from(regs[i]);
    tree.merge_scalars_from(shard);
  }
  expect_scalars_equal(forward, tree);

  // And it skipped the series by design.
  Registry with_series;
  with_series.series("s").append(TimePoint{1}, 1.0);
  Registry sink;
  sink.merge_scalars_from(with_series);
  EXPECT_TRUE(sink.all_series().empty());
}

TEST(Registry, ResetClearsEverything) {
  Registry reg;
  reg.counter("c").add(5);
  reg.latency("l").record(milliseconds(1));
  reg.series("s").append(TimePoint{1}, 1.0);
  reg.reset();
  EXPECT_EQ(reg.counter_value("c"), 0u);
  EXPECT_TRUE(reg.latency("l").empty());
  EXPECT_TRUE(reg.series("s").points().empty());
}

}  // namespace
}  // namespace riv::metrics
