// Tests for the baseline comparators used in §8's figures.
#include <gtest/gtest.h>

#include "baseline/broadcast_delivery.hpp"
#include "baseline/uncoordinated_polling.hpp"
#include "workload/deployment.hpp"

namespace riv::baseline {
namespace {

using workload::HomeDeployment;

devices::SensorSpec push_sensor(double rate_hz) {
  devices::SensorSpec spec;
  spec.id = SensorId{1};
  spec.name = "s";
  spec.tech = devices::Technology::kIp;
  spec.rate_hz = rate_hz;
  spec.payload_size = 4;
  return spec;
}

TEST(BroadcastDelivery, EveryProcessLearnsEveryEvent) {
  HomeDeployment::Options opt;
  opt.seed = 61;
  opt.n_processes = 4;
  HomeDeployment home(opt);
  home.add_sensor(push_sensor(10.0), {home.pid(1)});
  std::vector<std::unique_ptr<BroadcastDeliveryNode>> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(std::make_unique<BroadcastDeliveryNode>(
        home.net(), home.bus(), home.pid(i), home.processes(), i == 0));
    nodes.back()->start();
  }
  home.bus().start_all();
  home.run_for(seconds(10));
  std::uint64_t emitted = home.bus().sensor(SensorId{1}).events_emitted();
  EXPECT_GE(nodes[0]->delivered_to_app() + 1, emitted);
}

TEST(BroadcastDelivery, SingleReceiverBroadcastsOncePerEvent) {
  HomeDeployment::Options opt;
  opt.seed = 62;
  opt.n_processes = 5;
  HomeDeployment home(opt);
  home.add_sensor(push_sensor(10.0), {home.pid(1)});
  std::vector<std::unique_ptr<BroadcastDeliveryNode>> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<BroadcastDeliveryNode>(
        home.net(), home.bus(), home.pid(i), home.processes(), i == 0));
    nodes.back()->start();
  }
  home.bus().start_all();
  home.run_for(seconds(10));
  std::uint64_t emitted = home.bus().sensor(SensorId{1}).events_emitted();
  // 1 broadcast x (n-1) frames per event.
  EXPECT_NEAR(static_cast<double>(
                  home.metrics().counter_value("net.msgs.rb_event")),
              static_cast<double>(emitted * 4), 8.0);
}

TEST(BroadcastDelivery, MReceiversCostMTimesNMessages) {
  // §8.2's complaint about naive broadcast: m receivers each broadcast
  // (they all hear the sensor before any broadcast arrives).
  HomeDeployment::Options opt;
  opt.seed = 63;
  opt.n_processes = 5;
  HomeDeployment home(opt);
  home.add_sensor(push_sensor(10.0),
                  {home.pid(1), home.pid(2), home.pid(3)});
  std::vector<std::unique_ptr<BroadcastDeliveryNode>> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<BroadcastDeliveryNode>(
        home.net(), home.bus(), home.pid(i), home.processes(), i == 0));
    nodes.back()->start();
  }
  home.bus().start_all();
  home.run_for(seconds(10));
  std::uint64_t emitted = home.bus().sensor(SensorId{1}).events_emitted();
  double per_event = static_cast<double>(home.metrics().counter_value(
                         "net.msgs.rb_event")) /
                     static_cast<double>(emitted);
  EXPECT_GT(per_event, 10.0);  // ~3 x 4 = 12 frames per event
}

TEST(UncoordinatedPoller, PollsOncePerEpochWhenAlone) {
  HomeDeployment::Options opt;
  opt.seed = 64;
  opt.n_processes = 1;
  HomeDeployment home(opt);
  devices::SensorSpec spec = push_sensor(0.0);
  spec.push = false;
  spec.poll_latency = milliseconds(100);
  home.add_sensor(spec, {home.pid(0)});
  UncoordinatedPoller poller(home.sim(), home.bus(), home.pid(0),
                             SensorId{1}, seconds(5),
                             home.sim().rng().fork(1));
  home.bus().subscribe(home.pid(0), [&](const devices::SensorEvent& e) {
    poller.on_device_event(e);
  });
  poller.start();
  home.run_for(seconds(100));
  EXPECT_NEAR(static_cast<double>(poller.polls_issued()), 19.0, 2.0);
}

TEST(UncoordinatedPoller, CancelsWhenEventAlreadySeen) {
  HomeDeployment::Options opt;
  opt.seed = 65;
  opt.n_processes = 2;
  HomeDeployment home(opt);
  devices::SensorSpec spec = push_sensor(0.0);
  spec.push = false;
  spec.poll_latency = milliseconds(50);
  home.add_sensor(spec, {home.pid(0), home.pid(1)});
  std::vector<std::unique_ptr<UncoordinatedPoller>> pollers;
  for (int p = 0; p < 2; ++p) {
    pollers.push_back(std::make_unique<UncoordinatedPoller>(
        home.sim(), home.bus(), home.pid(p), SensorId{1}, seconds(5),
        home.sim().rng().fork(static_cast<std::uint64_t>(p))));
  }
  // Both processes see every response instantly: maximal cancellation.
  for (int p = 0; p < 2; ++p) {
    home.bus().subscribe(home.pid(p), [&](const devices::SensorEvent& e) {
      for (auto& poller : pollers) poller->on_device_event(e);
    });
  }
  for (auto& poller : pollers) poller->start();
  home.run_for(seconds(100));
  std::uint64_t total =
      pollers[0]->polls_issued() + pollers[1]->polls_issued();
  // ~19 epochs; with instant sharing the overlap window is the 50 ms poll
  // latency, so the second poll is almost always cancelled.
  EXPECT_LT(total, 25u);
  EXPECT_GE(total, 19u);
}

}  // namespace
}  // namespace riv::baseline
