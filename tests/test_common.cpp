// Unit tests for the common substrate: wire codec, RNG, time arithmetic,
// and the shared FNV-1a hash.
#include <gtest/gtest.h>

#include <cstring>

#include "common/codec.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

namespace riv {
namespace {

// The FNV-1a constants and reference digests are part of every trace
// fingerprint on disk; pin them so the shared implementation
// (common/hash.hpp) can never silently drift.
TEST(Fnv1a, ConstantsAndKnownDigestsArePinned) {
  EXPECT_EQ(hash::kFnvOffsetBasis, 0xcbf29ce484222325ULL);
  EXPECT_EQ(hash::kFnvPrime, 0x100000001b3ULL);
  // Empty input hashes to the offset basis.
  EXPECT_EQ(hash::fnv1a(nullptr, 0), hash::kFnvOffsetBasis);
  // Reference vector for 64-bit FNV-1a.
  EXPECT_EQ(hash::fnv1a("hello", 5), 0xa430d84680aabd0bULL);
  EXPECT_EQ(hash::fnv1a_digest(0xa430d84680aabd0bULL),
            "a430d84680aabd0b");
  EXPECT_EQ(hash::fnv1a_digest(0), "0000000000000000");
  // Incremental == one-shot.
  std::uint64_t h = hash::kFnvOffsetBasis;
  h = hash::fnv1a(h, "he", 2);
  h = hash::fnv1a_byte(h, 'l');
  h = hash::fnv1a(h, "lo", 2);
  EXPECT_EQ(h, hash::fnv1a("hello", 5));
}

// Fnv1aStream (the recorder's word-wise rolling hash) must be a pure
// function of the byte sequence: any split of the same bytes produces
// the same value, and different sequences produce different values.
TEST(Fnv1a, StreamIsSplitInvariantAndOrderSensitive) {
  const char* data = "the quick brown fox jumps over the lazy dog";
  const std::size_t n = std::strlen(data);
  hash::Fnv1aStream whole;
  whole.put(data, n);
  for (std::size_t cut = 0; cut <= n; ++cut) {
    hash::Fnv1aStream split;
    split.put(data, cut);
    for (std::size_t i = cut; i < n; ++i)
      split.put(static_cast<std::uint8_t>(data[i]));
    EXPECT_EQ(split.value(), whole.value()) << "cut at " << cut;
  }
  hash::Fnv1aStream other;
  other.put(data, n - 1);
  EXPECT_NE(other.value(), whole.value());  // length-sensitive
  hash::Fnv1aStream swapped;
  swapped.put("eht", 3);
  swapped.put(data + 3, n - 3);
  EXPECT_NE(swapped.value(), whole.value());  // order-sensitive
  // Empty and single-byte streams are distinct and stable.
  hash::Fnv1aStream empty;
  hash::Fnv1aStream one;
  one.put(std::uint8_t{0});
  EXPECT_NE(empty.value(), one.value());
}

TEST(Time, ArithmeticAndConversions) {
  EXPECT_EQ(seconds(2).us, 2'000'000);
  EXPECT_EQ(milliseconds(3).us, 3000);
  EXPECT_EQ(minutes(1).us, 60'000'000);
  EXPECT_EQ(days(1).us, 86'400'000'000LL);
  TimePoint t{1'000'000};
  EXPECT_EQ((t + seconds(1)).us, 2'000'000);
  EXPECT_EQ((TimePoint{5'000'000} - t).us, 4'000'000);
  EXPECT_DOUBLE_EQ(seconds(5).seconds(), 5.0);
  EXPECT_DOUBLE_EQ(milliseconds(1500).millis(), 1500.0);
  EXPECT_LT(t, TimePoint{2'000'000});
  EXPECT_EQ(seconds_f(0.5).us, 500'000);
}

TEST(Types, StrongIdsCompareAndHash) {
  EXPECT_EQ(ProcessId{3}, ProcessId{3});
  EXPECT_NE(SensorId{1}, SensorId{2});
  EXPECT_LT(ProcessId{1}, ProcessId{2});
  EventId a{SensorId{1}, 5}, b{SensorId{1}, 6};
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<EventId>{}(a), std::hash<EventId>{}(b));
  EXPECT_EQ(to_string(ProcessId{7}), "p7");
  EXPECT_EQ(to_string(EventId{SensorId{2}, 9}), "s2#9");
}

TEST(Codec, PrimitiveRoundTrip) {
  BinaryWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  w.str("rivulet");
  std::vector<std::byte> raw = {std::byte{1}, std::byte{2}};
  w.bytes(raw);

  BinaryReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "rivulet");
  EXPECT_EQ(r.bytes(), raw);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, IdAndTimeRoundTrip) {
  BinaryWriter w;
  w.process_id(ProcessId{12});
  w.sensor_id(SensorId{34});
  w.actuator_id(ActuatorId{56});
  w.event_id(EventId{SensorId{7}, 99});
  w.command_id(CommandId{ProcessId{2}, 1000});
  w.time_point(TimePoint{123456789});
  w.duration(milliseconds(250));

  BinaryReader r(w.data());
  EXPECT_EQ(r.process_id(), ProcessId{12});
  EXPECT_EQ(r.sensor_id(), SensorId{34});
  EXPECT_EQ(r.actuator_id(), ActuatorId{56});
  EXPECT_EQ(r.event_id(), (EventId{SensorId{7}, 99}));
  EXPECT_EQ(r.command_id(), (CommandId{ProcessId{2}, 1000}));
  EXPECT_EQ(r.time_point(), TimePoint{123456789});
  EXPECT_EQ(r.duration(), milliseconds(250));
  EXPECT_TRUE(r.ok());
}

TEST(Codec, OpaquePaddingCountsTowardSize) {
  BinaryWriter w;
  w.u8(1);
  w.opaque(1000);
  EXPECT_EQ(w.size(), 1001u);
  BinaryReader r(w.data());
  EXPECT_EQ(r.u8(), 1);
  r.skip_opaque(1000);
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, OutOfBoundsReadSetsErrorFlag) {
  BinaryWriter w;
  w.u16(7);
  BinaryReader r(w.data());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_EQ(r.u32(), 0u);  // past the end
  EXPECT_FALSE(r.ok());
}

TEST(Codec, TruncatedStringFailsGracefully) {
  BinaryWriter w;
  w.u32(100);  // claims 100 bytes follow, none do
  BinaryReader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.uniform_int(17), 17u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    double x = rng.exponential(100.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000.0, 100.0, 5.0);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(9);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += c1.next() == c2.next();
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace riv
