// Tests for the workload module: Fig 1 trace generation, the Table 1
// catalog, deployment harness behaviour, and placement overrides.
#include <gtest/gtest.h>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"
#include "workload/fig1.hpp"

namespace riv::workload {
namespace {

TEST(Fig1Trace, ReproducesPaperSkewShape) {
  Fig1Options options;
  options.duration = days(15);
  Fig1Result result = run_fig1_deployment(options);
  ASSERT_EQ(result.rows.size(), 6u);

  // Door 1 shows a large skew (paper: ~2357 events).
  const auto& door1 = result.rows[0];
  EXPECT_EQ(door1.sensor, "Door 1");
  EXPECT_GT(door1.skew(), 1500u);
  EXPECT_LT(door1.skew(), 3500u);

  // Motion 3's skew is small (paper: ~21 events).
  const auto& motion3 = result.rows[4];
  EXPECT_EQ(motion3.sensor, "Motion 3");
  EXPECT_LT(motion3.skew(), 150u);

  // Events lost on all links simultaneously are rare (§4.1: ~0.01%).
  EXPECT_LT(result.all_link_loss_fraction, 0.001);
  EXPECT_GE(result.all_link_loss_fraction, 0.0);

  // Every per-process count is at most the emission count.
  for (const auto& row : result.rows) {
    for (const auto& [p, n] : row.received) EXPECT_LE(n, row.emitted);
  }
}

TEST(Fig1Trace, DeterministicForSameSeed) {
  Fig1Options options;
  options.duration = days(1);
  Fig1Result a = run_fig1_deployment(options);
  Fig1Result b = run_fig1_deployment(options);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].emitted, b.rows[i].emitted);
    EXPECT_EQ(a.rows[i].received, b.rows[i].received);
  }
}

TEST(Fig1Trace, DifferentSeedsDiffer) {
  Fig1Options a, b;
  a.duration = b.duration = days(1);
  b.seed = a.seed + 1;
  Fig1Result ra = run_fig1_deployment(a);
  Fig1Result rb = run_fig1_deployment(b);
  EXPECT_NE(ra.rows[0].received, rb.rows[0].received);
}

TEST(Table1Catalog, HasThirteenAppsWithPaperGuarantees) {
  const auto& catalog = apps::table1_catalog();
  ASSERT_EQ(catalog.size(), 13u);
  int gapless = 0;
  for (const auto& entry : catalog)
    gapless += entry.guarantee == appmodel::Guarantee::kGapless;
  EXPECT_EQ(gapless, 8);  // Table 1: 8 Gapless, 5 Gap
  EXPECT_STREQ(catalog[0].name, "Occupancy-based HVAC");
  EXPECT_EQ(catalog[0].guarantee, appmodel::Guarantee::kGap);
  EXPECT_STREQ(catalog[8].name, "Intrusion-detection");
  EXPECT_EQ(catalog[8].guarantee, appmodel::Guarantee::kGapless);
}

TEST(AppFactories, GraphsValidateAndCarryMandatedGuarantees) {
  appmodel::AppGraph intrusion = apps::intrusion_detection(
      AppId{1}, {SensorId{1}, SensorId{2}}, ActuatorId{1});
  for (const auto& edge : intrusion.sensor_edges)
    EXPECT_EQ(edge.guarantee, appmodel::Guarantee::kGapless);
  auto* combiner = dynamic_cast<const appmodel::FTCombiner*>(
      intrusion.operators[0].combiner.get());
  ASSERT_NE(combiner, nullptr);
  EXPECT_EQ(combiner->max_failures(), 1u);  // n - 1 with n = 2

  appmodel::AppGraph averaging = apps::temperature_averaging(
      AppId{2}, {SensorId{1}, SensorId{2}, SensorId{3}, SensorId{4}},
      ActuatorId{1}, seconds(1));
  for (const auto& edge : averaging.sensor_edges)
    EXPECT_EQ(edge.guarantee, appmodel::Guarantee::kGap);
  auto* ft = dynamic_cast<const appmodel::FTCombiner*>(
      averaging.operators[0].combiner.get());
  ASSERT_NE(ft, nullptr);
  EXPECT_EQ(ft->max_failures(), 1u);  // floor((4-1)/3)
}

TEST(AppFactories, TemperatureHvacIsPollBased) {
  appmodel::AppGraph g = apps::temperature_hvac(
      AppId{1}, SensorId{1}, ActuatorId{1}, seconds(10), 18.0, 25.0);
  ASSERT_EQ(g.sensor_edges.size(), 1u);
  EXPECT_TRUE(g.sensor_edges[0].polling.poll_based());
  EXPECT_EQ(g.sensor_edges[0].polling.epoch, seconds(10));
}

TEST(Deployment, PlacementOverrideIsHonored) {
  HomeDeployment::Options opt;
  opt.seed = 9;
  opt.n_processes = 3;
  // Force p3 to bear the app even though p1 has all the devices.
  opt.config.placement_override[AppId{1}] = {
      ProcessId{3}, ProcessId{1}, ProcessId{2}};
  HomeDeployment home(opt);
  devices::SensorSpec door;
  door.id = SensorId{1};
  door.name = "door";
  door.kind = devices::SensorKind::kDoor;
  door.tech = devices::Technology::kIp;
  door.rate_hz = 5.0;
  home.add_sensor(door, {home.pid(0)});
  devices::ActuatorSpec light;
  light.id = ActuatorId{1};
  light.name = "light";
  light.tech = devices::Technology::kIp;
  home.add_actuator(light, {home.pid(0)});
  home.deploy(apps::turn_light_on_off(AppId{1}, SensorId{1}, ActuatorId{1}));
  home.start();
  home.run_for(seconds(5));
  EXPECT_TRUE(home.process(2).logic_active(AppId{1}));
  EXPECT_FALSE(home.process(0).logic_active(AppId{1}));
}

TEST(Deployment, ActiveLogicProcessFindsTheActive) {
  HomeDeployment::Options opt;
  opt.seed = 10;
  opt.n_processes = 2;
  HomeDeployment home(opt);
  devices::SensorSpec door;
  door.id = SensorId{1};
  door.name = "door";
  door.kind = devices::SensorKind::kDoor;
  door.tech = devices::Technology::kIp;
  door.rate_hz = 1.0;
  home.add_sensor(door, home.processes());
  devices::ActuatorSpec light;
  light.id = ActuatorId{1};
  light.name = "light";
  light.tech = devices::Technology::kIp;
  home.add_actuator(light, home.processes());
  home.deploy(apps::turn_light_on_off(AppId{1}, SensorId{1}, ActuatorId{1}));
  EXPECT_EQ(home.active_logic_process(AppId{1}), nullptr);  // not started
  home.start();
  home.run_for(seconds(2));
  ASSERT_NE(home.active_logic_process(AppId{1}), nullptr);
}

}  // namespace
}  // namespace riv::workload
