// RIVC decoder robustness: byte soup, truncation, mutation, bad versions.
//
// The decoder guards every restore and every riv_replay invocation, so it
// must reject — never crash on — arbitrary input, every strict prefix of
// a valid checkpoint, every single-byte mutation, and any version it does
// not speak (with the exact pinned message tools print to users).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checkpoint/rivc.hpp"
#include "common/codec.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"

namespace riv {
namespace {

// A small but fully featured snapshot: params, several sections, one
// empty payload.
checkpoint::Snapshot sample_snapshot() {
  checkpoint::Snapshot snap;
  snap.scenario = "gapless_ring";
  snap.seed = 42;
  snap.params = {std::byte{1}, std::byte{2}, std::byte{3}, std::byte{4}};
  snap.at = TimePoint{} + seconds(4);
  snap.trace_records = 1234;
  snap.trace_hash = 0xdeadbeefcafef00dULL;
  snap.sections.push_back({"sim.kernel", std::vector<std::byte>(64)});
  for (std::size_t i = 0; i < snap.sections[0].payload.size(); ++i)
    snap.sections[0].payload[i] = std::byte(i * 7);
  snap.sections.push_back({"net.wifi", {}});
  snap.sections.push_back({"proc.1", std::vector<std::byte>(17, std::byte{9})});
  return snap;
}

const char* const kPinnedErrors[] = {
    "not a RIVC checkpoint (bad magic)",
    "truncated checkpoint",
    "checkpoint footer hash mismatch",
    "trailing bytes after checkpoint footer",
};

bool is_pinned_error(const std::string& err) {
  for (const char* pin : kPinnedErrors)
    if (err == pin) return true;
  // Version errors embed the rejected number; match the prefix.
  return err.rfind("unsupported checkpoint version ", 0) == 0;
}

TEST(CheckpointFuzz, ValidSnapshotDecodes) {
  checkpoint::Snapshot snap = sample_snapshot();
  std::vector<std::byte> wire = checkpoint::encode(snap);
  checkpoint::Snapshot back;
  std::string err;
  ASSERT_TRUE(checkpoint::decode(wire, &back, &err)) << err;
  EXPECT_EQ(checkpoint::diff_snapshots(snap, back), "");
}

// Every strict prefix of a valid checkpoint must be rejected with a
// pinned error — there is no prefix length at which a decoder could
// mistake a torn write for a complete file.
TEST(CheckpointFuzz, EveryStrictPrefixIsRejected) {
  std::vector<std::byte> wire = checkpoint::encode(sample_snapshot());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    std::vector<std::byte> prefix(wire.begin(),
                                  wire.begin() + static_cast<long>(len));
    checkpoint::Snapshot out;
    std::string err;
    EXPECT_FALSE(checkpoint::decode(prefix, &out, &err))
        << "prefix of length " << len << " decoded";
    EXPECT_TRUE(is_pinned_error(err))
        << "prefix " << len << ": unexpected error '" << err << "'";
  }
}

// Flipping any single byte anywhere must be caught: magic bytes by the
// magic check, the version field by the version check, and everything
// else by the FNV-1a footer (each byte-update is a bijection on the
// rolling state, so a one-byte change can never collide).
TEST(CheckpointFuzz, EverySingleByteMutationIsRejected) {
  std::vector<std::byte> wire = checkpoint::encode(sample_snapshot());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (std::uint8_t flip : {0x01, 0x80}) {
      std::vector<std::byte> mutated = wire;
      mutated[i] ^= std::byte{flip};
      checkpoint::Snapshot out;
      std::string err;
      EXPECT_FALSE(checkpoint::decode(mutated, &out, &err))
          << "mutation at byte " << i << " decoded";
      EXPECT_TRUE(is_pinned_error(err))
          << "byte " << i << ": unexpected error '" << err << "'";
    }
  }
}

TEST(CheckpointFuzz, TrailingBytesAreRejected) {
  std::vector<std::byte> wire = checkpoint::encode(sample_snapshot());
  wire.push_back(std::byte{0});
  checkpoint::Snapshot out;
  std::string err;
  EXPECT_FALSE(checkpoint::decode(wire, &out, &err));
  EXPECT_EQ(err, "trailing bytes after checkpoint footer");
}

// Unknown versions must be reported with the exact pinned message — the
// string a user sees when feeding a new-format checkpoint to an old
// build — and must be detected before the footer check, so the message
// names the version instead of a useless hash mismatch.
TEST(CheckpointFuzz, WrongVersionsPinnedMessage) {
  for (std::uint32_t version : {0u, 2u, 7u, 0xffffffffu}) {
    // Re-encode with a patched version field and a recomputed (valid)
    // footer, so the version check alone rejects the file.
    std::vector<std::byte> wire = checkpoint::encode(sample_snapshot());
    BinaryWriter patch;
    patch.u32(version);
    std::vector<std::byte> vbytes = patch.take();
    for (std::size_t i = 0; i < 4; ++i) wire[4 + i] = vbytes[i];
    const std::size_t body = wire.size() - 8;
    const std::uint64_t footer = hash::fnv1a(wire.data(), body);
    BinaryWriter f;
    f.u64(footer);
    std::vector<std::byte> fbytes = f.take();
    for (std::size_t i = 0; i < 8; ++i) wire[body + i] = fbytes[i];

    checkpoint::Snapshot out;
    std::string err;
    EXPECT_FALSE(checkpoint::decode(wire, &out, &err));
    EXPECT_EQ(err, "unsupported checkpoint version " +
                       std::to_string(version) + " (this build reads 1)");
  }
}

TEST(CheckpointFuzz, BadMagicPinnedMessage) {
  std::vector<std::byte> wire = checkpoint::encode(sample_snapshot());
  wire[0] = std::byte{'X'};
  checkpoint::Snapshot out;
  std::string err;
  EXPECT_FALSE(checkpoint::decode(wire, &out, &err));
  EXPECT_EQ(err, "not a RIVC checkpoint (bad magic)");
}

// Pure byte soup: random buffers of many lengths never crash the decoder
// and never decode.
TEST(CheckpointFuzz, RandomByteSoupNeverDecodes) {
  Rng rng(0x5eed);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t len = rng.uniform_int(512);
    std::vector<std::byte> soup(len);
    for (std::byte& b : soup)
      b = std::byte(static_cast<std::uint8_t>(rng.uniform_int(256)));
    checkpoint::Snapshot out;
    std::string err;
    EXPECT_FALSE(checkpoint::decode(soup, &out, &err));
    EXPECT_FALSE(err.empty());
  }
}

// Soup that starts with valid magic + version exercises the deeper field
// and section parsing paths.
TEST(CheckpointFuzz, MagicPrefixedSoupNeverDecodes) {
  Rng rng(0xf00d);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t len = 8 + rng.uniform_int(512);
    std::vector<std::byte> soup(len);
    soup[0] = std::byte{'R'};
    soup[1] = std::byte{'I'};
    soup[2] = std::byte{'V'};
    soup[3] = std::byte{'C'};
    soup[4] = std::byte{1};
    soup[5] = soup[6] = soup[7] = std::byte{0};
    for (std::size_t i = 8; i < len; ++i)
      soup[i] = std::byte(static_cast<std::uint8_t>(rng.uniform_int(256)));
    checkpoint::Snapshot out;
    std::string err;
    EXPECT_FALSE(checkpoint::decode(soup, &out, &err));
    EXPECT_TRUE(is_pinned_error(err)) << err;
  }
}

}  // namespace
}  // namespace riv
