// Tests for the replicated event log: dedup, ordering, high-water marks,
// watermarks, bounded retention, and crash recovery from stable storage.
#include <gtest/gtest.h>

#include "core/event_log.hpp"

namespace riv::core {
namespace {

devices::SensorEvent ev(std::uint16_t sensor, std::uint32_t seq,
                        std::int64_t t_us) {
  devices::SensorEvent e;
  e.id = {SensorId{sensor}, seq};
  e.emitted_at = TimePoint{t_us};
  e.value = static_cast<double>(seq);
  e.payload_size = 4;
  return e;
}

TEST(EventLog, AppendAndSeen) {
  EventLog log(AppId{1}, nullptr, 100);
  EXPECT_FALSE(log.seen({SensorId{1}, 1}));
  EXPECT_TRUE(log.append(ev(1, 1, 10), {ProcessId{1}}, {ProcessId{1}}));
  EXPECT_TRUE(log.seen({SensorId{1}, 1}));
  EXPECT_EQ(log.size(SensorId{1}), 1u);
}

TEST(EventLog, DuplicateAppendRejected) {
  EventLog log(AppId{1}, nullptr, 100);
  EXPECT_TRUE(log.append(ev(1, 1, 10), {}, {}));
  EXPECT_FALSE(log.append(ev(1, 1, 10), {}, {}));
  EXPECT_EQ(log.size(SensorId{1}), 1u);
}

TEST(EventLog, StreamsAreIndependent) {
  EventLog log(AppId{1}, nullptr, 100);
  log.append(ev(1, 1, 10), {}, {});
  log.append(ev(2, 1, 20), {}, {});
  EXPECT_EQ(log.size(SensorId{1}), 1u);
  EXPECT_EQ(log.size(SensorId{2}), 1u);
  EXPECT_EQ(log.sensors().size(), 2u);
}

TEST(EventLog, HighWaterTracksMaxEmittedAt) {
  EventLog log(AppId{1}, nullptr, 100);
  EXPECT_EQ(log.high_water(SensorId{1}), TimePoint{});
  log.append(ev(1, 1, 100), {}, {});
  log.append(ev(1, 2, 300), {}, {});
  log.append(ev(1, 3, 200), {}, {});  // out-of-order arrival
  EXPECT_EQ(log.high_water(SensorId{1}), TimePoint{300});
}

TEST(EventLog, EventsAfterReturnsOrderedSuffix) {
  EventLog log(AppId{1}, nullptr, 100);
  for (std::uint32_t i = 1; i <= 5; ++i)
    log.append(ev(1, i, 100 * i), {}, {});
  auto suffix = log.events_after(SensorId{1}, TimePoint{200});
  ASSERT_EQ(suffix.size(), 3u);
  EXPECT_EQ(suffix[0]->event.id.seq, 3u);
  EXPECT_EQ(suffix[2]->event.id.seq, 5u);
}

TEST(EventLog, MergeSetsUnions) {
  EventLog log(AppId{1}, nullptr, 100);
  log.append(ev(1, 1, 10), {ProcessId{1}}, {ProcessId{1}, ProcessId{2}});
  log.merge_sets({SensorId{1}, 1}, {ProcessId{3}}, {ProcessId{4}});
  const StoredEvent* se = log.find({SensorId{1}, 1});
  ASSERT_NE(se, nullptr);
  EXPECT_EQ(se->seen.size(), 2u);
  EXPECT_EQ(se->need.size(), 3u);
}

TEST(EventLog, ProcessedWatermarkMonotonic) {
  EventLog log(AppId{1}, nullptr, 100);
  log.advance_processed_watermark(SensorId{1}, TimePoint{100});
  log.advance_processed_watermark(SensorId{1}, TimePoint{50});  // ignored
  EXPECT_EQ(log.processed_watermark(SensorId{1}), TimePoint{100});
  log.advance_processed_watermark(SensorId{1}, TimePoint{200});
  EXPECT_EQ(log.processed_watermark(SensorId{1}), TimePoint{200});
}

TEST(EventLog, CapEvictsOldestEntries) {
  EventLog log(AppId{1}, nullptr, 3);
  for (std::uint32_t i = 1; i <= 10; ++i) log.append(ev(1, i, i), {}, {});
  EXPECT_EQ(log.size(SensorId{1}), 3u);
  EXPECT_FALSE(log.seen({SensorId{1}, 1}));
  EXPECT_TRUE(log.seen({SensorId{1}, 10}));
}

TEST(EventLog, RecoversFromStableStore) {
  sim::StableStore store;
  {
    EventLog log(AppId{1}, &store, 100);
    log.append(ev(1, 1, 100), {ProcessId{1}}, {ProcessId{1}, ProcessId{2}});
    log.append(ev(1, 2, 200), {ProcessId{1}}, {ProcessId{1}});
    log.append(ev(2, 7, 300), {}, {});
    log.advance_processed_watermark(SensorId{1}, TimePoint{150});
  }  // crash: the in-memory log dies
  EventLog recovered(AppId{1}, &store, 100);
  recovered.recover();
  EXPECT_TRUE(recovered.seen({SensorId{1}, 1}));
  EXPECT_TRUE(recovered.seen({SensorId{1}, 2}));
  EXPECT_TRUE(recovered.seen({SensorId{2}, 7}));
  EXPECT_EQ(recovered.high_water(SensorId{1}), TimePoint{200});
  EXPECT_EQ(recovered.processed_watermark(SensorId{1}), TimePoint{150});
  const StoredEvent* se = recovered.find({SensorId{1}, 1});
  ASSERT_NE(se, nullptr);
  EXPECT_EQ(se->seen.count(ProcessId{1}), 1u);
  EXPECT_EQ(se->need.size(), 2u);
}

TEST(EventLog, RecoveryIsScopedPerApp) {
  sim::StableStore store;
  {
    EventLog a(AppId{1}, &store, 100);
    a.append(ev(1, 1, 100), {}, {});
    EventLog b(AppId{2}, &store, 100);
    b.append(ev(1, 9, 100), {}, {});
  }
  EventLog recovered(AppId{1}, &store, 100);
  recovered.recover();
  EXPECT_TRUE(recovered.seen({SensorId{1}, 1}));
  EXPECT_FALSE(recovered.seen({SensorId{1}, 9}));
}

TEST(EventLog, EvictionAlsoClearsStableStore) {
  sim::StableStore store;
  EventLog log(AppId{1}, &store, 2);
  for (std::uint32_t i = 1; i <= 5; ++i) log.append(ev(1, i, i), {}, {});
  EventLog recovered(AppId{1}, &store, 2);
  recovered.recover();
  EXPECT_EQ(recovered.size(SensorId{1}), 2u);
  EXPECT_TRUE(recovered.seen({SensorId{1}, 5}));
  EXPECT_FALSE(recovered.seen({SensorId{1}, 1}));
}

}  // namespace
}  // namespace riv::core

// --- appended: prefix high-water (hole-aware sync mark) -------------------

namespace riv::core {
namespace {

TEST(EventLogPrefix, EqualsHighWaterWhenContiguous) {
  EventLog log(AppId{1}, nullptr, 100);
  for (std::uint32_t i = 1; i <= 5; ++i) log.append(ev(1, i, 100 * i), {}, {});
  EXPECT_EQ(log.prefix_high_water(SensorId{1}), TimePoint{500});
  EXPECT_EQ(log.prefix_high_water(SensorId{1}),
            log.high_water(SensorId{1}));
}

TEST(EventLogPrefix, StopsAtFirstHole) {
  EventLog log(AppId{1}, nullptr, 100);
  log.append(ev(1, 1, 100), {}, {});
  log.append(ev(1, 2, 200), {}, {});
  log.append(ev(1, 4, 400), {}, {});  // seq 3 missing
  log.append(ev(1, 5, 500), {}, {});
  EXPECT_EQ(log.prefix_high_water(SensorId{1}), TimePoint{200});
  EXPECT_EQ(log.high_water(SensorId{1}), TimePoint{500});
}

TEST(EventLogPrefix, MissingHeadReportsZero) {
  // A process that missed the stream's start must ask for everything.
  EventLog log(AppId{1}, nullptr, 100);
  log.append(ev(1, 10, 1000), {}, {});
  log.append(ev(1, 11, 1100), {}, {});
  EXPECT_EQ(log.prefix_high_water(SensorId{1}), TimePoint{});
}

TEST(EventLogPrefix, EvictionRaisesTheFloor) {
  EventLog log(AppId{1}, nullptr, 3);
  for (std::uint32_t i = 1; i <= 6; ++i) log.append(ev(1, i, 100 * i), {}, {});
  // Seqs 1-3 evicted by the cap: the retained floor moved to 4, so the
  // remaining 4..6 run is a valid prefix again.
  EXPECT_EQ(log.prefix_high_water(SensorId{1}), TimePoint{600});
}

TEST(EventLogPrefix, FloorSurvivesRecovery) {
  sim::StableStore store;
  {
    EventLog log(AppId{1}, &store, 3);
    for (std::uint32_t i = 1; i <= 6; ++i)
      log.append(ev(1, i, 100 * i), {}, {});
  }
  EventLog recovered(AppId{1}, &store, 3);
  recovered.recover();
  EXPECT_EQ(recovered.prefix_high_water(SensorId{1}), TimePoint{600});
}

}  // namespace
}  // namespace riv::core
