// Tier-2 warm-fleet gate: a 256-home, 3-campaign sweep must produce
// bit-identical per-campaign results warm vs cold and across --jobs,
// with sampled flight recording and sampled attestation both on — the
// full production configuration of the warm path at once.
#include <gtest/gtest.h>

#include <vector>

#include "fleet/campaign.hpp"
#include "fleet/fleet.hpp"

namespace riv::fleet {
namespace {

TEST(WarmFleetDeterminism, Sweep256Homes3CampaignsWarmColdJobs) {
  FleetOptions cold;
  cold.seed = 11;
  cold.homes = 256;
  cold.jobs = 1;
  cold.shard_size = 32;
  cold.population.sim_duration = seconds(4);
  cold.observe.sample = 0.05;
  cold.keep_home_rows = true;
  cold.warm.prefix = seconds(2);
  cold.warm.attest_sample = 0.1;
  cold.warm.resalt = 0x5eed;

  std::vector<CampaignPlan> campaigns(3);
  CampaignEvent ev;
  ev.at = seconds(1);
  ev.duration = seconds(2);
  ev.fraction = 0.3;
  ev.kind = CampaignFault::kWifiOutage;
  campaigns[0].events.push_back(ev);
  ev.kind = CampaignFault::kPowerBlip;
  ev.fraction = 0.2;
  campaigns[1].events.push_back(ev);
  ev.kind = CampaignFault::kSensorDegrade;
  ev.fraction = 0.4;
  campaigns[2].events.push_back(ev);

  FleetOptions warm = cold;
  warm.warm.enabled = true;
  FleetOptions warm8 = warm;
  warm8.jobs = 8;

  const std::vector<FleetResult> rc = run_fleet_campaigns(cold, campaigns);
  const std::vector<FleetResult> rw = run_fleet_campaigns(warm, campaigns);
  const std::vector<FleetResult> r8 = run_fleet_campaigns(warm8, campaigns);
  ASSERT_EQ(rc.size(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(rc[c].rows, rw[c].rows) << "campaign " << c;
    EXPECT_EQ(rc[c].fault_digest, rw[c].fault_digest) << "campaign " << c;
    EXPECT_EQ(registry_fingerprint(rc[c].merged),
              registry_fingerprint(rw[c].merged))
        << "campaign " << c;
    EXPECT_EQ(rw[c].rows, r8[c].rows) << "campaign " << c << " jobs";
    EXPECT_EQ(rw[c].fault_digest, r8[c].fault_digest);
    EXPECT_EQ(registry_fingerprint(rw[c].merged),
              registry_fingerprint(r8[c].merged));
    EXPECT_GT(rc[c].homes_hit, 0u) << "campaign " << c;
  }
}

}  // namespace
}  // namespace riv::fleet
