// Unit tests for §6.1 windows: buffer bounds, trigger policies, evictor
// policies, and their combinations (parameterized sweep at the bottom).
#include <gtest/gtest.h>

#include "appmodel/window.hpp"

namespace riv::appmodel {
namespace {

devices::SensorEvent ev(std::uint32_t seq, TimePoint t, double value = 0.0) {
  devices::SensorEvent e;
  e.id = {SensorId{1}, seq};
  e.emitted_at = t;
  e.value = value;
  e.payload_size = 4;
  return e;
}

TEST(WindowSpec, TimeWindowDefaultsToPeriodicTrigger) {
  WindowSpec w = WindowSpec::time_window(seconds(60));
  EXPECT_EQ(w.bound, WindowSpec::Bound::kTime);
  EXPECT_EQ(w.trigger.kind, TriggerPolicy::Kind::kPeriodic);
  EXPECT_EQ(w.trigger.period, seconds(60));
  EXPECT_TRUE(w.evictor.clear_on_trigger);
}

TEST(WindowSpec, CountWindowDefaultsToCountTrigger) {
  WindowSpec w = WindowSpec::count_window(3);
  EXPECT_EQ(w.bound, WindowSpec::Bound::kCount);
  EXPECT_EQ(w.trigger.kind, TriggerPolicy::Kind::kCount);
  EXPECT_EQ(w.trigger.count, 3u);
}

TEST(Window, CountBoundEvictsOldest) {
  Window w(WindowSpec::count_window(3, TriggerPolicy::periodic(seconds(1))));
  for (std::uint32_t i = 1; i <= 5; ++i) w.add(ev(i, TimePoint{(int64_t)i}), TimePoint{(int64_t)i});
  auto snap = w.snapshot(TimePoint{5});
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].id.seq, 3u);
  EXPECT_EQ(snap[2].id.seq, 5u);
}

TEST(Window, TimeBoundEvictsByAge) {
  Window w(WindowSpec::time_window(seconds(10)));
  w.add(ev(1, TimePoint{seconds(0).us}), TimePoint{seconds(0).us});
  w.add(ev(2, TimePoint{seconds(8).us}), TimePoint{seconds(8).us});
  w.add(ev(3, TimePoint{seconds(15).us}), TimePoint{seconds(15).us});
  auto snap = w.snapshot(TimePoint{seconds(15).us});
  ASSERT_EQ(snap.size(), 2u);  // event 1 is 15 s old, beyond the 10 s span
  EXPECT_EQ(snap[0].id.seq, 2u);
}

TEST(Window, EveryEventTriggerFiresImmediately) {
  Window w(WindowSpec::count_window(5, TriggerPolicy::every_event()));
  EXPECT_FALSE(w.event_trigger_ready());
  w.add(ev(1, {}), {});
  EXPECT_TRUE(w.event_trigger_ready());
}

TEST(Window, CountTriggerWaitsForN) {
  Window w(WindowSpec::count_window(3));
  w.add(ev(1, {}), {});
  w.add(ev(2, {}), {});
  EXPECT_FALSE(w.event_trigger_ready());
  w.add(ev(3, {}), {});
  EXPECT_TRUE(w.event_trigger_ready());
}

TEST(Window, PeriodicTriggerIsNeverEventDriven) {
  Window w(WindowSpec::time_window(seconds(1)));
  for (std::uint32_t i = 0; i < 10; ++i) w.add(ev(i, {}), {});
  EXPECT_FALSE(w.event_trigger_ready());
}

TEST(Window, ClearOnTriggerEmptiesBuffer) {
  Window w(WindowSpec::count_window(3));
  for (std::uint32_t i = 1; i <= 3; ++i) w.add(ev(i, {}), {});
  EXPECT_EQ(w.snapshot({}).size(), 3u);
  w.after_trigger({});
  EXPECT_TRUE(w.empty());
}

TEST(Window, SlidingKeepLastRetainsSuffix) {
  // A sliding count window: bound 5, trigger on every event, keep last 4.
  Window w(WindowSpec::count_window(5, TriggerPolicy::every_event(),
                                    EvictorPolicy::sliding_keep_last(4)));
  for (std::uint32_t i = 1; i <= 5; ++i) w.add(ev(i, {}), {});
  w.after_trigger({});
  auto snap = w.snapshot({});
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().id.seq, 2u);  // oldest dropped, rest slides
}

TEST(Window, SlidingMaxAgePurgesOldEvents) {
  Window w(WindowSpec::count_window(100, TriggerPolicy::every_event(),
                                    EvictorPolicy::sliding_max_age(seconds(5))));
  w.add(ev(1, TimePoint{seconds(0).us}), TimePoint{seconds(0).us});
  w.add(ev(2, TimePoint{seconds(4).us}), TimePoint{seconds(4).us});
  w.after_trigger(TimePoint{seconds(4).us});
  auto snap = w.snapshot(TimePoint{seconds(7).us});
  ASSERT_EQ(snap.size(), 1u);  // event 1 aged out
  EXPECT_EQ(snap[0].id.seq, 2u);
}

TEST(Window, BurstSuppressionUseCase) {
  // §6.1: a count window of the burst size lets an operator deduplicate a
  // burst of identical events into one trigger.
  Window w(WindowSpec::count_window(3));
  for (std::uint32_t i = 1; i <= 3; ++i) w.add(ev(i, {}, 1.0), {});
  ASSERT_TRUE(w.event_trigger_ready());
  auto snap = w.snapshot({});
  ASSERT_EQ(snap.size(), 3u);
  for (const auto& e : snap) EXPECT_EQ(e.value, 1.0);
  w.after_trigger({});
  EXPECT_FALSE(w.event_trigger_ready());
}

// --- parameterized sweep: bounds respected under any (bound, count) -------

struct BoundCase {
  std::size_t bound;
  std::size_t inserted;
};

class WindowBoundSweep : public ::testing::TestWithParam<BoundCase> {};

TEST_P(WindowBoundSweep, NeverExceedsCountBound) {
  const auto [bound, inserted] = GetParam();
  Window w(WindowSpec::count_window(bound,
                                    TriggerPolicy::periodic(seconds(1))));
  for (std::uint32_t i = 0; i < inserted; ++i) {
    w.add(ev(i, TimePoint{(int64_t)i}), TimePoint{(int64_t)i});
    ASSERT_LE(w.size(), bound);
  }
  EXPECT_EQ(w.size(), std::min(bound, inserted));
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, WindowBoundSweep,
    ::testing::Values(BoundCase{1, 10}, BoundCase{2, 10}, BoundCase{5, 5},
                      BoundCase{5, 4}, BoundCase{16, 100},
                      BoundCase{100, 1000}));

class WindowAgeSweep : public ::testing::TestWithParam<int> {};

TEST_P(WindowAgeSweep, TimeBoundHonoredForAnySpan) {
  const int span_s = GetParam();
  Window w(WindowSpec::time_window(seconds(span_s)));
  // One event per second for 3*span seconds.
  for (int i = 0; i < 3 * span_s; ++i) {
    TimePoint t{seconds(i).us};
    w.add(ev(static_cast<std::uint32_t>(i), t), t);
  }
  TimePoint now{seconds(3 * span_s - 1).us};
  for (const auto& e : w.snapshot(now))
    EXPECT_LE((now - e.emitted_at).us, seconds(span_s).us);
}

INSTANTIATE_TEST_SUITE_P(Spans, WindowAgeSweep,
                         ::testing::Values(1, 2, 5, 10, 60));

}  // namespace
}  // namespace riv::appmodel
