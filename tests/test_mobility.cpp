// Tests for wearable mobility (§2.1): path following, BLE bond migration,
// and Gapless delivery while the wearer walks through the home.
#include <gtest/gtest.h>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"
#include "workload/mobility.hpp"

namespace riv::workload {
namespace {

TEST(MobileSensor, FollowsPathAtConfiguredSpeed) {
  sim::Simulation sim(1);
  devices::HomeBus bus(sim);
  HomeTopology topo;
  topo.add_host({ProcessId{1},
                 "h",
                 {0.0, 0.0},
                 {devices::Technology::kBle}});
  devices::SensorSpec spec;
  spec.id = SensorId{1};
  spec.name = "wearable";
  spec.kind = devices::SensorKind::kWearable;
  spec.tech = devices::Technology::kBle;
  bus.add_sensor(spec);
  MobileSensor mob(sim, topo, bus, SensorId{1},
                   {{0.0, 0.0}, {10.0, 0.0}}, /*speed=*/1.0);
  mob.start();
  sim.run_for(seconds(5));
  EXPECT_NEAR(mob.position().x, 5.0, 0.01);
  sim.run_for(seconds(5));
  EXPECT_NEAR(mob.position().x, 10.0, 0.01);
  sim.run_for(seconds(10));  // walks the loop back
  EXPECT_NEAR(mob.position().x, 0.0, 0.01);
}

TEST(MobileSensor, BleBondMigratesToClosestHost) {
  sim::Simulation sim(2);
  devices::HomeBus bus(sim);
  HomeTopology topo;
  devices::AdapterSet ble = {devices::Technology::kBle};
  topo.add_host({ProcessId{1}, "left", {0.0, 0.0}, ble});
  topo.add_host({ProcessId{2}, "right", {60.0, 0.0}, ble});
  bus.add_adapter(ProcessId{1}, devices::Technology::kBle);
  bus.add_adapter(ProcessId{2}, devices::Technology::kBle);
  devices::SensorSpec spec;
  spec.id = SensorId{1};
  spec.name = "wearable";
  spec.kind = devices::SensorKind::kWearable;
  spec.tech = devices::Technology::kBle;
  bus.add_sensor(spec);
  MobileSensor mob(sim, topo, bus, SensorId{1},
                   {{5.0, 0.0}, {55.0, 0.0}}, /*speed=*/5.0);
  mob.start();
  // Starts near the left host.
  auto links = mob.current_links();
  ASSERT_EQ(links.size(), 1u);  // BLE: single bonded host
  EXPECT_EQ(links[0], ProcessId{1});
  sim.run_for(seconds(9));  // now at x=50, near the right host
  links = mob.current_links();
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0], ProcessId{2});
  EXPECT_GE(mob.relinks(), 2u);
}

TEST(MobileSensor, GaplessFallAlertsSurviveMobility) {
  HomeDeployment::Options opt;
  opt.seed = 91;
  opt.n_processes = 3;
  HomeDeployment home(opt);
  HomeTopology topo = sample_home(home.processes());

  devices::SensorSpec wearable;
  wearable.id = SensorId{1};
  wearable.name = "fall-wearable";
  wearable.kind = devices::SensorKind::kWearable;
  wearable.tech = devices::Technology::kBle;
  wearable.rate_hz = 1.0;
  home.bus().add_sensor(wearable);

  devices::ActuatorSpec notifier;
  notifier.id = ActuatorId{1};
  notifier.name = "notifier";
  notifier.tech = devices::Technology::kIp;
  home.bus().add_actuator(notifier);
  home.bus().link_actuator(ActuatorId{1}, home.pid(0));

  // Walk a loop through every room of the sample home.
  MobileSensor mob(home.sim(), topo, home.bus(), SensorId{1},
                   {{2.0, 2.0}, {14.0, 2.0}, {14.0, 8.0}, {2.0, 8.0}},
                   /*speed=*/1.5);
  home.deploy(apps::fall_alert(AppId{1}, SensorId{1}, ActuatorId{1}));
  mob.start();
  home.start();
  home.run_for(seconds(120));

  EXPECT_GE(mob.relinks(), 3u);  // the bond moved between hosts
  std::uint64_t emitted = home.bus().sensor(SensorId{1}).events_emitted();
  ASSERT_GT(emitted, 100u);
  // An emission mid-migration can be lost on the air (no bonded host, or
  // a lossy range-edge link) — that is pre-ingest loss Rivulet explicitly
  // does not cover (§4.1). The Gapless guarantee is about what *was*
  // ingested somewhere: every such event must reach the app.
  std::uint64_t ingested = 0;
  for (int i = 1; i <= 3; ++i) {
    ingested += home.metrics().counter_value("ingest.p" +
                                             std::to_string(i) + ".s1");
  }
  std::uint64_t delivered = home.metrics().counter_value("app1.delivered");
  EXPECT_GE(delivered + 1, ingested);   // post-ingest: nothing lost
  EXPECT_GE(ingested + 10, emitted);    // the air loss itself stays small
  EXPECT_GT(home.bus().actuator(ActuatorId{1}).actions(), 40u);
}

TEST(MobileSensor, StopFreezesLinks) {
  sim::Simulation sim(3);
  devices::HomeBus bus(sim);
  HomeTopology topo;
  topo.add_host({ProcessId{1},
                 "h",
                 {0.0, 0.0},
                 {devices::Technology::kBle}});
  bus.add_adapter(ProcessId{1}, devices::Technology::kBle);
  devices::SensorSpec spec;
  spec.id = SensorId{1};
  spec.name = "wearable";
  spec.tech = devices::Technology::kBle;
  bus.add_sensor(spec);
  MobileSensor mob(sim, topo, bus, SensorId{1}, {{0, 0}, {5, 0}}, 1.0);
  mob.start();
  sim.run_for(seconds(2));
  mob.stop();
  std::uint64_t relinks = mob.relinks();
  sim.run_for(seconds(20));
  EXPECT_EQ(mob.relinks(), relinks);
}

}  // namespace
}  // namespace riv::workload
