// Unit tests for the device substrate: sensors (push/poll, multicast,
// loss, one-outstanding-poll), actuators (idempotent, Test&Set), event
// codec, adapters, and the HomeBus wiring layer.
#include <gtest/gtest.h>

#include "devices/home_bus.hpp"

namespace riv::devices {
namespace {

SensorSpec ip_push_sensor(std::uint16_t id, double rate_hz = 10.0) {
  SensorSpec spec;
  spec.id = SensorId{id};
  spec.name = "s" + std::to_string(id);
  spec.kind = SensorKind::kTemperature;
  spec.tech = Technology::kIp;
  spec.push = true;
  spec.payload_size = 4;
  spec.rate_hz = rate_hz;
  return spec;
}

SensorSpec zwave_poll_sensor(std::uint16_t id,
                             Duration latency = milliseconds(500)) {
  SensorSpec spec;
  spec.id = SensorId{id};
  spec.name = "poll" + std::to_string(id);
  spec.kind = SensorKind::kTemperature;
  spec.tech = Technology::kZWave;
  spec.push = false;
  spec.payload_size = 4;
  spec.poll_latency = latency;
  spec.poll_jitter = 0.0;
  return spec;
}

TEST(EventCodec, RoundTripLargePayload) {
  SensorEvent e;
  e.id = {SensorId{3}, 42};
  e.epoch = 7;
  e.emitted_at = TimePoint{123456};
  e.poll_based = true;
  e.value = 21.75;
  e.payload_size = 20000;  // camera frame
  BinaryWriter w;
  encode(w, e);
  EXPECT_EQ(w.size(), e.wire_size());
  BinaryReader r(w.data());
  SensorEvent d = decode_event(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(d.id, e.id);
  EXPECT_EQ(d.epoch, 7u);
  EXPECT_EQ(d.emitted_at, e.emitted_at);
  EXPECT_TRUE(d.poll_based);
  EXPECT_DOUBLE_EQ(d.value, 21.75);
  EXPECT_EQ(d.payload_size, 20000u);
}

TEST(EventCodec, SmallPayloadQuantizesToMilliUnits) {
  for (std::uint32_t payload : {2u, 4u}) {
    SensorEvent e;
    e.id = {SensorId{1}, 1};
    e.value = payload == 2 ? -3.2 : 21.734;
    e.payload_size = payload;
    BinaryWriter w;
    encode(w, e);
    EXPECT_EQ(w.size(), e.wire_size());
    BinaryReader r(w.data());
    SensorEvent d = decode_event(r);
    EXPECT_NEAR(d.value, e.value, 0.001);
  }
}

TEST(EventCodec, NegativeValueSignExtends) {
  SensorEvent e;
  e.id = {SensorId{1}, 1};
  e.value = -40.0;  // cold snap
  e.payload_size = 3;
  BinaryWriter w;
  encode(w, e);
  BinaryReader r(w.data());
  EXPECT_NEAR(decode_event(r).value, -40.0, 0.001);
}

TEST(CommandCodec, RoundTrip) {
  Command c;
  c.id = {ProcessId{4}, 17};
  c.actuator = ActuatorId{9};
  c.test_and_set = true;
  c.expected = 0.0;
  c.value = 1.0;
  c.issued_at = TimePoint{777};
  BinaryWriter w;
  encode(w, c);
  EXPECT_EQ(w.size(), Command::kWireSize);
  BinaryReader r(w.data());
  Command d = decode_command(r);
  EXPECT_EQ(d.id, c.id);
  EXPECT_EQ(d.actuator, c.actuator);
  EXPECT_TRUE(d.test_and_set);
  EXPECT_DOUBLE_EQ(d.value, 1.0);
}

TEST(Adapters, ProfilesMatchPaperRanges) {
  EXPECT_DOUBLE_EQ(profile(Technology::kZWave).range_m, 40.0);   // §2.1
  EXPECT_DOUBLE_EQ(profile(Technology::kZigbee).range_m, 15.0);  // 10–20 m
  EXPECT_DOUBLE_EQ(profile(Technology::kBle).range_m, 100.0);
  EXPECT_TRUE(profile(Technology::kZWave).multicast);
  EXPECT_FALSE(profile(Technology::kBle).multicast);  // single bonded host
}

struct BusFixture : ::testing::Test {
  BusFixture() : sim(5), bus(sim) {
    for (std::uint16_t i = 1; i <= 3; ++i) {
      bus.add_adapter(ProcessId{i}, Technology::kIp);
      bus.add_adapter(ProcessId{i}, Technology::kZWave);
      bus.add_adapter(ProcessId{i}, Technology::kBle);
    }
  }
  std::vector<SensorEvent> received[4];
  void subscribe_all() {
    for (std::uint16_t i = 1; i <= 3; ++i) {
      bus.subscribe(ProcessId{i}, [this, i](const SensorEvent& e) {
        received[i].push_back(e);
      });
    }
  }
  sim::Simulation sim;
  HomeBus bus;
};

TEST_F(BusFixture, PushSensorMulticastsToAllLinkedProcesses) {
  bus.add_sensor(ip_push_sensor(1));
  bus.link_sensor(SensorId{1}, ProcessId{1});
  bus.link_sensor(SensorId{1}, ProcessId{2});
  subscribe_all();
  bus.sensor(SensorId{1}).start();
  sim.run_for(seconds(1));
  EXPECT_NEAR(received[1].size(), 10, 2);
  EXPECT_NEAR(received[2].size(), 10, 2);
  EXPECT_EQ(received[3].size(), 0u);  // not linked
}

TEST_F(BusFixture, PeriodicRateIsExact) {
  bus.add_sensor(ip_push_sensor(1, 5.0));
  bus.link_sensor(SensorId{1}, ProcessId{1});
  subscribe_all();
  bus.sensor(SensorId{1}).start();
  sim.run_for(seconds(10));
  EXPECT_EQ(bus.sensor(SensorId{1}).events_emitted(), 50u);
}

TEST_F(BusFixture, LinkLossDropsIndependently) {
  bus.add_sensor(ip_push_sensor(1, 100.0));
  LinkParams lossy;
  lossy.loss_prob = 0.5;
  bus.link_sensor(SensorId{1}, ProcessId{1});
  bus.link_sensor(SensorId{1}, ProcessId{2}, lossy);
  subscribe_all();
  bus.sensor(SensorId{1}).start();
  sim.run_for(seconds(20));
  double clean = static_cast<double>(received[1].size());
  double lossy_count = static_cast<double>(received[2].size());
  EXPECT_NEAR(lossy_count / clean, 0.5, 0.06);
}

TEST_F(BusFixture, BleSensorReachesOnlyBondedProcess) {
  SensorSpec spec = ip_push_sensor(1);
  spec.tech = Technology::kBle;
  bus.add_sensor(spec);
  bus.link_sensor(SensorId{1}, ProcessId{1});
  bus.link_sensor(SensorId{1}, ProcessId{2});
  subscribe_all();
  bus.sensor(SensorId{1}).start();
  sim.run_for(seconds(1));
  EXPECT_GT(received[1].size(), 0u);
  EXPECT_EQ(received[2].size(), 0u);  // BLE is not multicast
}

TEST_F(BusFixture, PollRespondsOnlyToRequester) {
  bus.add_sensor(zwave_poll_sensor(1));
  bus.link_sensor(SensorId{1}, ProcessId{1});
  bus.link_sensor(SensorId{1}, ProcessId{2});
  subscribe_all();
  bus.poll(ProcessId{1}, SensorId{1}, 7);
  sim.run_for(seconds(2));
  ASSERT_EQ(received[1].size(), 1u);
  EXPECT_EQ(received[1][0].epoch, 7u);
  EXPECT_TRUE(received[1][0].poll_based);
  EXPECT_EQ(received[2].size(), 0u);
}

TEST_F(BusFixture, ConcurrentPollsAreSilentlyDropped) {
  bus.add_sensor(zwave_poll_sensor(1));
  bus.link_sensor(SensorId{1}, ProcessId{1});
  bus.link_sensor(SensorId{1}, ProcessId{2});
  subscribe_all();
  bus.poll(ProcessId{1}, SensorId{1}, 1);
  bus.poll(ProcessId{2}, SensorId{1}, 1);  // sensor is busy -> dropped
  sim.run_for(seconds(2));
  Sensor& s = bus.sensor(SensorId{1});
  EXPECT_EQ(s.polls_received(), 2u);
  EXPECT_EQ(s.polls_dropped(), 1u);
  EXPECT_EQ(s.polls_served(), 1u);
  EXPECT_EQ(received[1].size() + received[2].size(), 1u);
}

TEST_F(BusFixture, SequentialPollsBothServe) {
  bus.add_sensor(zwave_poll_sensor(1, milliseconds(100)));
  bus.link_sensor(SensorId{1}, ProcessId{1});
  subscribe_all();
  bus.poll(ProcessId{1}, SensorId{1}, 1);
  sim.run_for(seconds(1));
  bus.poll(ProcessId{1}, SensorId{1}, 2);
  sim.run_for(seconds(1));
  EXPECT_EQ(received[1].size(), 2u);
}

TEST_F(BusFixture, CrashedSensorIgnoresPollsAndEmitsNothing) {
  bus.add_sensor(zwave_poll_sensor(1));
  bus.link_sensor(SensorId{1}, ProcessId{1});
  subscribe_all();
  Sensor& s = bus.sensor(SensorId{1});
  s.crash();
  bus.poll(ProcessId{1}, SensorId{1}, 1);
  sim.run_for(seconds(2));
  EXPECT_EQ(received[1].size(), 0u);
  EXPECT_EQ(s.polls_received(), 0u);
}

TEST_F(BusFixture, SensorRecoversAndResumesPush) {
  bus.add_sensor(ip_push_sensor(1, 10.0));
  bus.link_sensor(SensorId{1}, ProcessId{1});
  subscribe_all();
  Sensor& s = bus.sensor(SensorId{1});
  s.start();
  sim.run_for(seconds(1));
  std::size_t before = received[1].size();
  s.crash();
  sim.run_for(seconds(1));
  EXPECT_EQ(received[1].size(), before);  // silent while crashed
  s.recover();
  sim.run_for(seconds(1));
  EXPECT_GT(received[1].size(), before);
}

TEST_F(BusFixture, BinarySensorAlternates) {
  SensorSpec spec = ip_push_sensor(1, 10.0);
  spec.kind = SensorKind::kDoor;
  bus.add_sensor(spec);
  bus.link_sensor(SensorId{1}, ProcessId{1});
  subscribe_all();
  bus.sensor(SensorId{1}).start();
  sim.run_for(seconds(1));
  ASSERT_GE(received[1].size(), 4u);
  for (std::size_t i = 1; i < received[1].size(); ++i)
    EXPECT_NE(received[1][i].value, received[1][i - 1].value);
}

TEST_F(BusFixture, InRangeQueries) {
  bus.add_sensor(ip_push_sensor(1));
  bus.link_sensor(SensorId{1}, ProcessId{1});
  EXPECT_TRUE(bus.sensor_in_range(ProcessId{1}, SensorId{1}));
  EXPECT_FALSE(bus.sensor_in_range(ProcessId{2}, SensorId{1}));
  auto procs = bus.processes_in_range(SensorId{1});
  ASSERT_EQ(procs.size(), 1u);
  EXPECT_EQ(procs[0], ProcessId{1});
}

// --- actuators ------------------------------------------------------------

struct ActuatorFixture : ::testing::Test {
  ActuatorFixture() : sim(9), bus(sim) {
    bus.add_adapter(ProcessId{1}, Technology::kIp);
    bus.add_adapter(ProcessId{2}, Technology::kIp);
  }
  ActuatorSpec light_spec(bool idempotent, bool tas) {
    ActuatorSpec spec;
    spec.id = ActuatorId{1};
    spec.name = "light";
    spec.tech = Technology::kIp;
    spec.idempotent = idempotent;
    spec.supports_test_and_set = tas;
    return spec;
  }
  Command cmd(std::uint32_t seq, double value, bool tas = false,
              double expected = 0.0) {
    Command c;
    c.id = {ProcessId{1}, seq};
    c.actuator = ActuatorId{1};
    c.value = value;
    c.test_and_set = tas;
    c.expected = expected;
    return c;
  }
  sim::Simulation sim;
  HomeBus bus;
};

TEST_F(ActuatorFixture, AppliesCommandAfterLatency) {
  Actuator& a = bus.add_actuator(light_spec(true, false));
  bus.link_actuator(ActuatorId{1}, ProcessId{1});
  bus.actuate(ProcessId{1}, cmd(1, 1.0));
  EXPECT_EQ(a.state(), 0.0);  // not yet
  sim.run_for(seconds(1));
  EXPECT_EQ(a.state(), 1.0);
  EXPECT_EQ(a.actions(), 1u);
}

TEST_F(ActuatorFixture, DuplicateIdempotentIsHarmless) {
  Actuator& a = bus.add_actuator(light_spec(true, false));
  bus.link_actuator(ActuatorId{1}, ProcessId{1});
  bus.link_actuator(ActuatorId{1}, ProcessId{2});
  bus.actuate(ProcessId{1}, cmd(1, 1.0));
  bus.actuate(ProcessId{2}, cmd(1, 1.0));  // same command via two processes
  sim.run_for(seconds(1));
  EXPECT_EQ(a.state(), 1.0);
  EXPECT_EQ(a.duplicate_deliveries(), 1u);
  EXPECT_EQ(a.unwarranted_actions(), 0u);
}

TEST_F(ActuatorFixture, DuplicateNonIdempotentWithoutTasIsUnwarranted) {
  ActuatorSpec spec = light_spec(false, false);
  spec.name = "water-dispenser";
  Actuator& a = bus.add_actuator(spec);
  bus.link_actuator(ActuatorId{1}, ProcessId{1});
  bus.link_actuator(ActuatorId{1}, ProcessId{2});
  bus.actuate(ProcessId{1}, cmd(1, 1.0));
  bus.actuate(ProcessId{2}, cmd(1, 1.0));
  sim.run_for(seconds(1));
  EXPECT_EQ(a.unwarranted_actions(), 1u);  // double dispense!
}

TEST_F(ActuatorFixture, TestAndSetRejectsSecondApplication) {
  ActuatorSpec spec = light_spec(false, true);
  Actuator& a = bus.add_actuator(spec);
  bus.link_actuator(ActuatorId{1}, ProcessId{1});
  bus.link_actuator(ActuatorId{1}, ProcessId{2});
  bus.actuate(ProcessId{1}, cmd(1, 1.0, true, 0.0));
  bus.actuate(ProcessId{2}, cmd(1, 1.0, true, 0.0));
  sim.run_for(seconds(1));
  EXPECT_EQ(a.actions(), 1u);  // second T&S saw state already changed
  EXPECT_EQ(a.rejected_test_and_set(), 1u);
  EXPECT_EQ(a.unwarranted_actions(), 0u);
}

TEST_F(ActuatorFixture, CrashedActuatorDoesNotRespond) {
  Actuator& a = bus.add_actuator(light_spec(true, false));
  bus.link_actuator(ActuatorId{1}, ProcessId{1});
  a.crash();
  bus.actuate(ProcessId{1}, cmd(1, 1.0));
  sim.run_for(seconds(1));
  EXPECT_EQ(a.state(), 0.0);
  EXPECT_EQ(a.actions(), 0u);
  a.recover();
  bus.actuate(ProcessId{1}, cmd(2, 1.0));
  sim.run_for(seconds(1));
  EXPECT_EQ(a.state(), 1.0);
}

TEST_F(ActuatorFixture, OutOfRangeSubmitIsIgnored) {
  Actuator& a = bus.add_actuator(light_spec(true, false));
  bus.link_actuator(ActuatorId{1}, ProcessId{1});
  a.submit(ProcessId{2}, cmd(1, 1.0));  // p2 has no link
  sim.run_for(seconds(1));
  EXPECT_EQ(a.actions(), 0u);
}

}  // namespace
}  // namespace riv::devices
