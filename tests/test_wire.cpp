// Tests for the protocol payload formats: round-trips and the exact wire
// sizes the network-overhead results depend on.
#include <gtest/gtest.h>

#include "core/wire.hpp"

namespace riv::core::wire {
namespace {

devices::SensorEvent sample_event(std::uint32_t payload = 4) {
  devices::SensorEvent e;
  e.id = {SensorId{3}, 42};
  e.epoch = 9;
  e.emitted_at = TimePoint{1234567};
  e.poll_based = true;
  e.value = 21.5;
  e.payload_size = payload;
  return e;
}

TEST(Wire, PidSetRoundTrip) {
  BinaryWriter w;
  std::set<ProcessId> s = {ProcessId{1}, ProcessId{5}, ProcessId{300}};
  write_pid_set(w, s);
  EXPECT_EQ(w.size(), 1u + 2u * 3u);
  BinaryReader r(w.data());
  EXPECT_EQ(read_pid_set(r), s);
}

TEST(Wire, EmptyPidSet) {
  BinaryWriter w;
  write_pid_set(w, {});
  BinaryReader r(w.data());
  EXPECT_TRUE(read_pid_set(r).empty());
}

TEST(Wire, RingPayloadRoundTrip) {
  RingPayload p;
  p.app = AppId{7};
  p.sensor = SensorId{3};
  p.seen = {ProcessId{1}, ProcessId{2}};
  p.need = {ProcessId{1}, ProcessId{2}, ProcessId{3}};
  p.event = sample_event();
  std::vector<std::byte> buf = encode(p);
  RingPayload d = decode_ring(buf);
  EXPECT_EQ(d.app, p.app);
  EXPECT_EQ(d.sensor, p.sensor);
  EXPECT_EQ(d.seen, p.seen);
  EXPECT_EQ(d.need, p.need);
  EXPECT_EQ(d.event.id, p.event.id);
  EXPECT_EQ(d.event.epoch, p.event.epoch);
}

TEST(Wire, RingPayloadSizeFormula) {
  // app(2) + sensor(2) + (1 + 2|S|) + (1 + 2|V|) + event(23 + payload).
  RingPayload p;
  p.app = AppId{1};
  p.sensor = SensorId{1};
  p.seen = {ProcessId{1}};
  p.need = {ProcessId{1}, ProcessId{2}, ProcessId{3}, ProcessId{4},
            ProcessId{5}};
  p.event = sample_event(4);
  EXPECT_EQ(encode(p).size(), 2u + 2u + 3u + 11u + 27u);
}

TEST(Wire, EventPayloadRoundTripAndSize) {
  EventPayload p;
  p.app = AppId{2};
  p.sensor = SensorId{3};
  p.event = sample_event(8);
  std::vector<std::byte> buf = encode_event_payload(p);
  EXPECT_EQ(buf.size(), 2u + 2u + 23u + 8u);
  EventPayload d = decode_event_payload(buf);
  EXPECT_EQ(d.app, p.app);
  EXPECT_EQ(d.event.id, p.event.id);
  EXPECT_DOUBLE_EQ(d.event.value, 21.5);
}

TEST(Wire, SyncRequestRoundTrip) {
  std::vector<std::byte> buf = encode_sync_request(AppId{12});
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(decode_sync_request(buf), AppId{12});
}

TEST(Wire, SyncResponseRoundTrip) {
  SyncResponse p;
  p.app = AppId{4};
  p.high_waters = {{SensorId{1}, TimePoint{100}},
                   {SensorId{9}, TimePoint{20000}}};
  std::vector<std::byte> buf = encode(p);
  EXPECT_EQ(buf.size(), 2u + 2u + 2u * 10u);
  SyncResponse d = decode_sync_response(buf);
  EXPECT_EQ(d.app, p.app);
  ASSERT_EQ(d.high_waters.size(), 2u);
  EXPECT_EQ(d.high_waters[1].first, SensorId{9});
  EXPECT_EQ(d.high_waters[1].second, TimePoint{20000});
}

TEST(Wire, CommandPayloadRoundTrip) {
  CommandPayload p;
  p.app = AppId{1};
  p.guarantee = 1;
  p.command.id = {ProcessId{2}, 55};
  p.command.actuator = ActuatorId{4};
  p.command.test_and_set = true;
  p.command.expected = 1.0;
  p.command.value = 0.0;
  p.command.issued_at = TimePoint{42};
  std::vector<std::byte> buf = encode(p);
  EXPECT_EQ(buf.size(), 2u + 1u + devices::Command::kWireSize);
  CommandPayload d = decode_command_payload(buf);
  EXPECT_EQ(d.guarantee, 1);
  EXPECT_EQ(d.command.id, p.command.id);
  EXPECT_TRUE(d.command.test_and_set);
}

TEST(Wire, RoleChangeRoundTrip) {
  std::vector<std::byte> buf = encode_role_change(AppId{3});
  EXPECT_EQ(decode_role_change(buf), AppId{3});
}

TEST(Wire, CommandAckRoundTrip) {
  CommandAck p;
  p.app = AppId{6};
  p.command = {ProcessId{3}, 77};
  std::vector<std::byte> buf = encode(p);
  EXPECT_EQ(buf.size(), 2u + 6u);
  CommandAck d = decode_command_ack(buf);
  EXPECT_EQ(d.app, p.app);
  EXPECT_EQ(d.command, p.command);
}

TEST(Wire, LargeEventSurvivesRing) {
  RingPayload p;
  p.app = AppId{1};
  p.sensor = SensorId{1};
  p.seen = {ProcessId{1}};
  p.need = {ProcessId{1}, ProcessId{2}};
  p.event = sample_event(20 * 1024);
  std::vector<std::byte> buf = encode(p);
  EXPECT_GT(buf.size(), 20u * 1024u);
  RingPayload d = decode_ring(buf);
  EXPECT_EQ(d.event.payload_size, 20u * 1024u);
  EXPECT_DOUBLE_EQ(d.event.value, 21.5);
}

}  // namespace
}  // namespace riv::core::wire
