// Packed trace-stream (v3) property and fuzz tests.
//
// The flight recorder's on-disk format is a packed, typed byte stream
// decoded by hand-rolled bounds-checked readers. These tests hammer the
// decoder: random byte soup never crashes; every strict prefix of a
// valid multi-chunk encoding is rejected; targeted mutations (bad key
// ids, bad flags, flipped payload bytes) are rejected cleanly; and a
// round-trip property check proves every Kind/key combination renders
// through pack→decode exactly like the legacy eagerly-formatted detail.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "trace/format.hpp"
#include "trace/trace.hpp"

namespace riv {
namespace trace {
namespace {

std::vector<std::byte> random_bytes(std::mt19937_64& rng, std::size_t n) {
  std::vector<std::byte> buf(n);
  for (std::size_t i = 0; i < n; ++i)
    buf[i] = static_cast<std::byte>(rng() & 0xff);
  return buf;
}

// Random byte soup must be rejected (or, astronomically unlikely,
// accepted) without crashing or reading out of bounds. ASAN builds make
// this meaningfully stronger.
TEST(TraceFuzzTest, RandomBytesNeverCrashDecode) {
  std::mt19937_64 rng(0x5eed0001);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::byte> buf = random_bytes(rng, rng() % 256);
    Recorder out;
    std::string err;
    (void)Recorder::decode(buf, &out, &err);
  }
}

// Same, but starting from a valid header so the record-walking loop is
// actually reached instead of bailing at the magic check.
TEST(TraceFuzzTest, RandomPayloadAfterValidHeaderNeverCrashes) {
  std::mt19937_64 rng(0x5eed0002);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::byte> buf;
    for (char c : {'R', 'I', 'V', 'T'}) buf.push_back(std::byte(c));
    buf.push_back(std::byte{3});
    buf.push_back(std::byte{0});
    buf.push_back(std::byte{0});
    buf.push_back(std::byte{0});
    std::vector<std::byte> soup = random_bytes(rng, rng() % 200);
    buf.insert(buf.end(), soup.begin(), soup.end());
    Recorder out;
    std::string err;
    (void)Recorder::decode(buf, &out, &err);
  }
}

Recorder build_sample(std::mt19937_64& rng, int n_records) {
  Recorder rec;
  std::int64_t t = 0;
  for (int i = 0; i < n_records; ++i) {
    t += static_cast<std::int64_t>(rng() % 100000);
    ProcessId p{static_cast<std::uint16_t>(rng() % 8)};
    switch (rng() % 5) {
      case 0:
        rec.append(TimePoint{t}, p, Component::kSim, Kind::kTimerFire,
                   fu(Key::kTimer, rng() % 1000));
        break;
      case 1:
        rec.append(TimePoint{t}, p, Component::kNet, Kind::kSend,
                   fs(Key::kType, "ring_event"),
                   fp(Key::kSrc, ProcessId{1}), fp(Key::kDst, p));
        break;
      case 2:
        rec.append(
            TimePoint{t}, p, Component::kDelivery, Kind::kIngest,
            ProvenanceId{static_cast<std::uint16_t>(1 + rng() % 4),
                         static_cast<std::uint32_t>(rng() % 10000)},
            fu(Key::kApp, 1),
            fe(Key::kEvent,
               EventId{SensorId{1}, static_cast<std::uint32_t>(i)}),
            fs(Key::kSrcName, "device"));
        break;
      case 3:
        rec.append(TimePoint{t}, p, Component::kRuntime, Kind::kCrash);
        break;
      default:
        rec.append(TimePoint{t}, p, Component::kChaos, Kind::kMark,
                   fs(Key::kText, "free-form text with spaces"));
        break;
    }
  }
  return rec;
}

// Every strict prefix of a valid encoding must fail to decode: the
// format is self-delimiting with a length-bearing footer, so any cut
// loses either records or the footer.
TEST(TraceFuzzTest, StrictPrefixesOfValidEncodingAreRejected) {
  std::mt19937_64 rng(0x5eed0003);
  Recorder rec = build_sample(rng, 100);
  std::vector<std::byte> buf = rec.encode();
  for (std::size_t n = 0; n < buf.size(); ++n) {
    std::vector<std::byte> prefix(buf.begin(),
                                  buf.begin() + static_cast<long>(n));
    Recorder out;
    std::string err;
    EXPECT_FALSE(Recorder::decode(prefix, &out, &err))
        << "prefix length " << n << " decoded";
  }
  Recorder out;
  std::string err;
  EXPECT_TRUE(Recorder::decode(buf, &out, &err)) << err;
  EXPECT_EQ(out.records(), rec.records());
}

// Flipping any single payload byte must be caught — by a structural
// check (bad flags/kind/key/overrun) or, failing that, by the footer
// hash. Either way decode() returns false and never crashes.
TEST(TraceFuzzTest, SingleByteMutationsAreRejected) {
  std::mt19937_64 rng(0x5eed0004);
  Recorder rec = build_sample(rng, 60);
  std::vector<std::byte> buf = rec.encode();
  // Exhaustive over a small trace would be slow; sample positions.
  for (int i = 0; i < 400; ++i) {
    std::size_t pos = rng() % buf.size();
    std::byte flip = static_cast<std::byte>(1 + rng() % 255);
    std::vector<std::byte> mutant = buf;
    mutant[pos] = mutant[pos] ^ flip;
    Recorder out;
    std::string err;
    bool ok = Recorder::decode(mutant, &out, &err);
    if (ok) {
      // The only legal way a mutation survives is if it decodes to the
      // exact same bytes — impossible for a 1-byte xor — so accept-ness
      // here is a failure.
      ADD_FAILURE() << "mutation at " << pos << " (xor "
                    << std::to_integer<int>(flip) << ") was accepted";
    }
  }
}

// Bad key ids specifically: craft a record whose field key is out of
// table range and check the decoder reports a malformed record rather
// than indexing past the key table.
TEST(TraceFuzzTest, OutOfRangeKeyIdsAreRejected) {
  Recorder rec;
  rec.append(TimePoint{10}, ProcessId{1}, Component::kSim,
             Kind::kTimerFire, fu(Key::kTimer, 1));
  std::vector<std::byte> buf = rec.encode();
  // Find the key byte: header is 8 bytes, then flags,kind,time,process,
  // nfields, key. Rather than hand-compute offsets, scan for the known
  // key id and bump it past the table.
  bool mutated = false;
  for (std::size_t i = 8; i < buf.size() && !mutated; ++i) {
    if (buf[i] == static_cast<std::byte>(Key::kTimer)) {
      buf[i] = std::byte{static_cast<unsigned char>(kKeyCount + 5)};
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated);
  Recorder out;
  std::string err;
  EXPECT_FALSE(Recorder::decode(buf, &out, &err));
}

// Truncated-chunk simulation: cut a large multi-chunk trace at random
// interior positions (biased into the middle) — never a crash, never an
// accept.
TEST(TraceFuzzTest, TruncatedMultiChunkStreamsAreRejected) {
  std::mt19937_64 rng(0x5eed0005);
  Recorder rec;
  std::string pad(300, 'z');
  for (int i = 0; i < 1000; ++i) {  // ~300KB payload, several chunks
    rec.append(TimePoint{i}, ProcessId{1}, Component::kChaos, Kind::kMark,
               fs(Key::kText, pad));
  }
  std::vector<std::byte> buf = rec.encode();
  ASSERT_GT(buf.size(), 2u * 64 * 1024);
  for (int i = 0; i < 200; ++i) {
    std::size_t cut = 1 + rng() % (buf.size() - 1);
    std::vector<std::byte> prefix(buf.begin(),
                                  buf.begin() + static_cast<long>(cut));
    Recorder out;
    std::string err;
    EXPECT_FALSE(Recorder::decode(prefix, &out, &err))
        << "cut at " << cut;
  }
}

// Round-trip property: for every Kind, a record built through the
// typed-field API must decode and render to the exact detail string the
// legacy v2 recorder would have stored eagerly. The legacy string is
// constructed here by hand from the same values — this is the rendering
// contract trace_diff and the goldens rely on.
TEST(TraceFuzzTest, TypedRoundTripMatchesLegacyRenderingForEveryKind) {
  std::mt19937_64 rng(0x5eed0006);
  for (int round = 0; round < 50; ++round) {
    Recorder rec;
    std::vector<std::string> expected;
    std::int64_t t = 0;
    for (int k = 0; k < static_cast<int>(kKindCount); ++k) {
      t += static_cast<std::int64_t>(rng() % 5000);
      Kind kind = static_cast<Kind>(k);
      ProcessId p{static_cast<std::uint16_t>(1 + rng() % 6)};
      ProcessId q{static_cast<std::uint16_t>(1 + rng() % 6)};
      auto u32 = [&] { return static_cast<std::uint32_t>(rng() % 9999); };
      switch (rng() % 8) {
        case 0: {
          std::uint64_t id = rng() % 100000;
          rec.append(TimePoint{t}, p, Component::kSim, kind,
                     fu(Key::kTimer, id));
          expected.push_back("timer=" + std::to_string(id));
          break;
        }
        case 1: {
          rec.append(TimePoint{t}, p, Component::kNet, kind,
                     fs(Key::kType, "keepalive"), fp(Key::kSrc, p),
                     fp(Key::kDst, q), fs(Key::kReason, "partition"));
          expected.push_back("type=keepalive src=" + to_string(p) +
                             " dst=" + to_string(q) + " reason=partition");
          break;
        }
        case 2: {
          std::int64_t extra = static_cast<std::int64_t>(rng() % 9000) - 4500;
          rec.append(TimePoint{t}, p, Component::kNet, kind,
                     fs(Key::kText, "edge_delay"), fp(Key::kSrc, p),
                     fp(Key::kDst, q), fi(Key::kExtraUs, extra));
          expected.push_back("edge_delay src=" + to_string(p) + " dst=" +
                             to_string(q) +
                             " extra_us=" + std::to_string(extra));
          break;
        }
        case 3: {
          EventId e{SensorId{static_cast<std::uint16_t>(1 + rng() % 4)},
                    u32()};
          std::uint64_t seen = rng() % 5, need = rng() % 5;
          rec.append(TimePoint{t}, p, Component::kDelivery, kind,
                     ProvenanceId{e.sensor.value, e.seq},
                     fu(Key::kApp, 1), fe(Key::kEvent, e),
                     fs(Key::kSrcName, "device"), fu(Key::kSeen, seen),
                     fu(Key::kNeed, need));
          expected.push_back("app=1 event=" + to_string(e) +
                             " src=device S=" + std::to_string(seen) +
                             " V=" + std::to_string(need));
          break;
        }
        case 4: {
          CommandId c{q, u32()};
          ActuatorId a{static_cast<std::uint16_t>(1 + rng() % 4)};
          rec.append(TimePoint{t}, p, Component::kDevice, kind,
                     fc(Key::kCmd, c), fa(Key::kActuator, a),
                     fu(Key::kAccepted, 1), fu(Key::kDup, 0));
          expected.push_back("cmd=" + to_string(c) +
                             " actuator=" + to_string(a) +
                             " accepted=1 dup=0");
          break;
        }
        case 5: {
          std::vector<ProcessId> view;
          int n = 1 + static_cast<int>(rng() % 4);
          for (int j = 0; j < n; ++j)
            view.push_back(
                ProcessId{static_cast<std::uint16_t>(1 + j * 2)});
          rec.append(TimePoint{t}, p, Component::kMembership, kind,
                     fv(Key::kView, view));
          std::string s = "view=";
          for (std::size_t j = 0; j < view.size(); ++j) {
            if (j > 0) s += '+';
            s += to_string(view[j]);
          }
          expected.push_back(s);
          break;
        }
        case 6: {
          rec.append(TimePoint{t}, p, Component::kRuntime, kind);
          expected.push_back("");
          break;
        }
        default: {
          std::uint64_t id = rng() % 50;
          rec.append(TimePoint{t}, p, Component::kChaos, kind,
                     fu(Key::kFaultId, id),
                     fs(Key::kText, "crash p2 (noop)"));
          expected.push_back("id=" + std::to_string(id) +
                             " crash p2 (noop)");
          break;
        }
      }
    }
    // Decode from the packed bytes (not just the in-memory arena).
    Recorder back;
    std::string err;
    ASSERT_TRUE(Recorder::decode(rec.encode(), &back, &err)) << err;
    std::vector<Record> rs = back.records();
    ASSERT_EQ(rs.size(), expected.size());
    for (std::size_t i = 0; i < rs.size(); ++i) {
      EXPECT_EQ(rs[i].detail, expected[i]) << "kind index " << i;
      EXPECT_EQ(rs[i].kind, static_cast<Kind>(i));
    }
    EXPECT_EQ(back.hash(), rec.hash());
  }
}

}  // namespace
}  // namespace trace
}  // namespace riv
