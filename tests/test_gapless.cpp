// End-to-end tests of the Gapless delivery protocol (§4.1): ring
// replication, exactly-once delivery per process, loss masking, reliable
// broadcast fallback, and successor sync.
#include <gtest/gtest.h>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv {
namespace {

using workload::HomeDeployment;

devices::SensorSpec door_sensor(std::uint16_t id, double rate_hz) {
  devices::SensorSpec spec;
  spec.id = SensorId{id};
  spec.name = "door";
  spec.kind = devices::SensorKind::kDoor;
  spec.tech = devices::Technology::kIp;
  spec.push = true;
  spec.payload_size = 4;
  spec.rate_hz = rate_hz;
  return spec;
}

devices::ActuatorSpec light_actuator(std::uint16_t id) {
  devices::ActuatorSpec spec;
  spec.id = ActuatorId{id};
  spec.name = "light";
  spec.tech = devices::Technology::kIp;
  spec.idempotent = true;
  return spec;
}

constexpr AppId kApp{1};
constexpr SensorId kDoor{1};
constexpr ActuatorId kLight{1};

struct GaplessFixture : ::testing::Test {
  // Home: n processes; door sensor reaches `receivers`; light actuator
  // reaches p1 (which therefore wins placement on ties, as the chain
  // tie-break prefers low ids).
  std::unique_ptr<HomeDeployment> make_home(
      int n, std::vector<int> receiver_indices, double loss = 0.0,
      double rate_hz = 10.0, std::uint64_t seed = 17) {
    HomeDeployment::Options opt;
    opt.seed = seed;
    opt.n_processes = n;
    auto home = std::make_unique<HomeDeployment>(opt);
    std::vector<ProcessId> receivers;
    for (int i : receiver_indices) receivers.push_back(home->pid(i));
    devices::LinkParams params;
    params.loss_prob = loss;
    home->add_sensor(door_sensor(kDoor.value, rate_hz), receivers, params);
    home->add_actuator(light_actuator(kLight.value), {home->pid(0)});
    home->deploy(workload::apps::turn_light_on_off(
        kApp, kDoor, kLight, appmodel::Guarantee::kGapless));
    return home;
  }
};

TEST_F(GaplessFixture, LogicActivatesOnPlacementWinner) {
  auto home = make_home(5, {1});
  home->start();
  home->run_for(seconds(2));
  EXPECT_TRUE(home->process(0).logic_active(kApp));
  for (int i = 1; i < 5; ++i)
    EXPECT_FALSE(home->process(i).logic_active(kApp));
}

TEST_F(GaplessFixture, AllEventsDeliveredWithoutFailures) {
  auto home = make_home(5, {1});
  home->start();
  home->run_for(seconds(20));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  ASSERT_GT(emitted, 150u);
  // Allow for events still in flight at the horizon.
  EXPECT_GE(home->process(0).delivered(kApp), emitted - 2);
  EXPECT_LE(home->process(0).delivered(kApp), emitted);
}

TEST_F(GaplessFixture, EventReplicatedAtEveryProcessLog) {
  auto home = make_home(5, {1});
  home->start();
  home->run_for(seconds(10));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  for (int i = 0; i < 5; ++i) {
    core::EventLog* log = home->process(i).event_log(kApp);
    ASSERT_NE(log, nullptr);
    EXPECT_GE(log->size(kDoor), emitted - 3) << "process " << i;
  }
}

TEST_F(GaplessFixture, RingUsesNMessagesPerEvent) {
  auto home = make_home(5, {1});
  home->start();
  home->run_for(seconds(20));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  std::uint64_t ring_msgs = home->metrics().counter_value(
      "net.msgs.ring_event");
  // §4.1: n messages per event with n processes (no failures).
  EXPECT_NEAR(static_cast<double>(ring_msgs) / static_cast<double>(emitted),
              5.0, 0.3);
  // The optimistic path should not trigger reliable broadcast.
  EXPECT_EQ(home->metrics().counter_value("net.msgs.rb_event"), 0u);
}

TEST_F(GaplessFixture, MultipleReceiversStillNMessages) {
  // §4.1: even when m processes receive the event directly, the ring needs
  // only ~n messages, not m*n.
  auto home = make_home(5, {1, 2, 3});
  home->start();
  home->run_for(seconds(20));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  std::uint64_t ring_msgs =
      home->metrics().counter_value("net.msgs.ring_event");
  EXPECT_LT(static_cast<double>(ring_msgs) / static_cast<double>(emitted),
            6.5);
  EXPECT_GE(home->process(0).delivered(kApp), emitted - 2);
}

TEST_F(GaplessFixture, ExactlyOnceDeliveryPerProcess) {
  auto home = make_home(4, {1, 2, 3});
  home->start();
  home->run_for(seconds(20));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  // Delivered to the single active logic exactly once per event: total
  // delivered across processes equals the active process's count and never
  // exceeds emitted.
  std::uint64_t total = 0;
  for (int i = 0; i < 4; ++i) total += home->process(i).delivered(kApp);
  EXPECT_LE(total, emitted);
  EXPECT_GE(total, emitted - 2);
}

TEST_F(GaplessFixture, MasksHeavyLinkLossWithMultipleReceivers) {
  // 40% per-link loss on three receivers: ~6.4% of events are lost on all
  // links; everything received anywhere must reach the app.
  auto home = make_home(5, {1, 2, 3}, /*loss=*/0.4, /*rate=*/10.0);
  home->start();
  home->run_for(seconds(60));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  std::uint64_t received_anywhere = 0;
  for (int i = 1; i <= 3; ++i) {
    received_anywhere = std::max(
        received_anywhere,
        home->metrics().counter_value("ingest.p" + std::to_string(i + 1) +
                                      ".s1"));
  }
  std::uint64_t delivered = home->process(0).delivered(kApp);
  double ratio = static_cast<double>(delivered) /
                 static_cast<double>(emitted);
  EXPECT_GT(ratio, 0.90);  // ~1 - 0.4^3 = 0.936, minus horizon effects
  EXPECT_GE(delivered, received_anywhere);  // at least every best-link event
}

TEST_F(GaplessFixture, LightActuatedByCommands) {
  auto home = make_home(3, {1});
  home->start();
  home->run_for(seconds(10));
  const devices::Actuator& light = home->bus().actuator(kLight);
  EXPECT_GT(light.actions(), 50u);  // ~10 commands/s
  EXPECT_EQ(light.unwarranted_actions(), 0u);
}

TEST_F(GaplessFixture, SingleProcessHomeDeliversLocally) {
  // §4.1: must work with one process; the ring degenerates to local
  // delivery with no messages.
  auto home = make_home(1, {0});
  home->start();
  home->run_for(seconds(10));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  EXPECT_GE(home->process(0).delivered(kApp), emitted - 1);
  EXPECT_EQ(home->metrics().counter_value("net.msgs.ring_event"), 0u);
}

TEST_F(GaplessFixture, TwoProcessHome) {
  auto home = make_home(2, {1});
  home->start();
  home->run_for(seconds(10));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  EXPECT_GE(home->process(0).delivered(kApp), emitted - 2);
}

TEST_F(GaplessFixture, DeterministicAcrossRuns) {
  std::uint64_t delivered[2];
  for (int run = 0; run < 2; ++run) {
    auto home = make_home(5, {1, 2}, 0.2, 10.0, /*seed=*/99);
    home->start();
    home->run_for(seconds(15));
    delivered[run] = home->process(0).delivered(kApp);
  }
  EXPECT_EQ(delivered[0], delivered[1]);
}

}  // namespace
}  // namespace riv
