// Model-checking style test of the Gapless ring protocol: N GaplessStream
// instances connected by an adversarial message scheduler (random order,
// random drops, temporary node silence), followed by anti-entropy rounds.
// Invariants checked per §4.1:
//   * exactly-once local delivery at every node,
//   * after message drain + sync rounds, every node's log holds every
//     event that was ingested anywhere,
//   * the failure-free happy path costs exactly n messages per event.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"
#include "core/delivery/gapless_stream.hpp"

namespace riv::core {
namespace {

struct Network;

struct Node {
  Node(Network& net, std::uint16_t id, int n);

  sim::Simulation* sim;
  sim::ProcessTimers timers;
  ProcessId self;
  EventLog log;
  std::set<ProcessId> view;
  std::vector<EventId> delivered;
  std::unique_ptr<GaplessStream> stream;
  bool silenced{false};  // drops everything addressed to it
};

struct Pending {
  ProcessId src;
  ProcessId dst;
  net::MsgType type;
  std::vector<std::byte> payload;
};

struct Network {
  explicit Network(int n, std::uint64_t seed) : sim(seed), rng(seed ^ 77) {
    for (int i = 0; i < n; ++i)
      nodes.push_back(std::make_unique<Node>(*this, (std::uint16_t)(i + 1), n));
  }

  Node& node(ProcessId p) { return *nodes[p.value - 1]; }

  void enqueue(ProcessId src, ProcessId dst, net::MsgType type,
               std::vector<std::byte> payload) {
    queue.push_back({src, dst, type, std::move(payload)});
    ++messages_sent;
  }

  // Deliver queued messages in adversarial order with a drop probability.
  void drain(double drop_prob) {
    while (!queue.empty()) {
      std::size_t pick = rng.uniform_int(queue.size());
      Pending msg = std::move(queue[pick]);
      queue.erase(queue.begin() + static_cast<long>(pick));
      Node& dst = node(msg.dst);
      if (dst.silenced || rng.bernoulli(drop_prob)) continue;
      switch (msg.type) {
        case net::MsgType::kRingEvent:
          dst.stream->on_ring(msg.src, wire::decode_ring(msg.payload));
          break;
        case net::MsgType::kRbEvent:
          dst.stream->on_rb(msg.src,
                            wire::decode_event_payload(msg.payload));
          break;
        default:
          break;
      }
    }
  }

  // One anti-entropy round: every node syncs its ring successor with the
  // successor's true prefix high-water (what the runtime's request /
  // response exchange computes).
  void sync_round() {
    for (auto& n : nodes) {
      if (n->silenced) continue;
      auto it = n->view.upper_bound(n->self);
      if (it == n->view.end()) it = n->view.begin();
      if (*it == n->self) continue;
      Node& succ = node(*it);
      if (succ.silenced) continue;
      n->stream->sync_successor(succ.self,
                                succ.log.prefix_high_water(SensorId{1}));
    }
  }

  devices::SensorEvent event(std::uint32_t seq) {
    devices::SensorEvent e;
    e.id = {SensorId{1}, seq};
    e.emitted_at = TimePoint{static_cast<std::int64_t>(seq) * 1000};
    e.payload_size = 4;
    return e;
  }

  sim::Simulation sim;
  Rng rng;
  std::vector<std::unique_ptr<Node>> nodes;
  std::deque<Pending> queue;
  std::uint64_t messages_sent{0};
};

Node::Node(Network& net, std::uint16_t id, int n)
    : sim(&net.sim),
      timers(net.sim),
      self{id},
      log(AppId{1}, nullptr, 100000) {
  for (std::uint16_t i = 1; i <= n; ++i) view.insert(ProcessId{i});
  StreamContext ctx;
  ctx.self = self;
  ctx.app = AppId{1};
  appmodel::SensorEdge edge;
  edge.sensor = SensorId{1};
  edge.guarantee = appmodel::Guarantee::kGapless;
  edge.window = appmodel::WindowSpec::count_window(1);
  ctx.edge = edge;
  ctx.in_range = true;
  for (std::uint16_t i = 1; i <= n; ++i) {
    ctx.all_processes.push_back(ProcessId{i});
    ctx.in_range_processes.push_back(ProcessId{i});
  }
  ctx.view = [this]() -> const std::set<ProcessId>& { return view; };
  ctx.chain = [this] {
    return std::vector<ProcessId>(view.begin(), view.end());
  };
  ctx.logic_active_here = [] { return true; };
  ctx.deliver = [this](const devices::SensorEvent& e) {
    delivered.push_back(e.id);
  };
  ProcessId src = self;
  ctx.send = [&net, src](ProcessId dst, net::MsgType type,
                         std::vector<std::byte> payload) {
    net.enqueue(src, dst, type, std::move(payload));
  };
  ctx.staleness = [](std::uint32_t) {};
  ctx.poll = [](std::uint32_t) {};
  ctx.timers = &timers;
  ctx.log = &log;
  stream = std::make_unique<GaplessStream>(std::move(ctx));
}

void expect_converged(Network& net, std::uint32_t n_events) {
  for (auto& node : net.nodes) {
    EXPECT_EQ(node->log.size(SensorId{1}), n_events)
        << "node " << node->self.value << " log incomplete";
    // Exactly-once delivery: no EventId appears twice.
    std::set<EventId> unique(node->delivered.begin(),
                             node->delivered.end());
    EXPECT_EQ(unique.size(), node->delivered.size())
        << "node " << node->self.value << " saw duplicates";
    EXPECT_EQ(unique.size(), n_events);
  }
}

TEST(RingModel, HappyPathCostsExactlyNMessagesPerEvent) {
  Network net(5, 11);
  for (std::uint32_t seq = 1; seq <= 20; ++seq) {
    net.node(ProcessId{3}).stream->on_device_event(net.event(seq));
    net.drain(0.0);
  }
  EXPECT_EQ(net.messages_sent, 20u * 5u);  // n messages per event (§4.1)
  expect_converged(net, 20);
}

TEST(RingModel, MultipleIngestersStillConverge) {
  Network net(4, 12);
  for (std::uint32_t seq = 1; seq <= 30; ++seq) {
    // Two nodes ingest the same event near-simultaneously.
    net.node(ProcessId{1}).stream->on_device_event(net.event(seq));
    net.node(ProcessId{3}).stream->on_device_event(net.event(seq));
    net.drain(0.0);
  }
  expect_converged(net, 30);
}

class RingModelChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingModelChaos, ConvergesDespiteDropsSilenceAndReordering) {
  const std::uint64_t seed = GetParam();
  Network net(5, seed);
  Rng rng(seed * 31 + 7);
  for (std::uint32_t seq = 1; seq <= 120; ++seq) {
    // Random node becomes temporarily silent (crash window).
    if (rng.bernoulli(0.1)) {
      for (auto& node : net.nodes) node->silenced = false;
      net.node(ProcessId{(std::uint16_t)(1 + rng.uniform_int(5))})
          .silenced = true;
    }
    std::uint16_t ingester = (std::uint16_t)(1 + rng.uniform_int(5));
    if (net.node(ProcessId{ingester}).silenced) ingester = ingester % 5 + 1;
    if (!net.node(ProcessId{ingester}).silenced)
      net.node(ProcessId{ingester}).stream->on_device_event(net.event(seq));
    net.drain(/*drop_prob=*/0.15);
  }
  // Quiesce: everyone back, repeated anti-entropy until fixpoint.
  for (auto& node : net.nodes) node->silenced = false;
  for (int round = 0; round < 6; ++round) {
    net.sync_round();
    net.drain(0.0);
  }
  // Every event ingested anywhere is everywhere, exactly once.
  std::uint32_t max_log = 0;
  for (auto& node : net.nodes)
    max_log = std::max<std::uint32_t>(
        max_log, (std::uint32_t)node->log.size(SensorId{1}));
  expect_converged(net, max_log);
  EXPECT_GT(max_log, 100u);  // nearly all 120 were ingested
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingModelChaos,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace riv::core
