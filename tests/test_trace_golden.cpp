// Golden-trace differential tests.
//
// Each scenario runs a fixed-seed deployment with the flight recorder
// installed and compares the resulting trace — structurally, record by
// record — against a blessed golden checked in under
// tests/trace_golden/. Any behavioural change anywhere in the stack
// (event ordering, protocol decisions, fault handling) shows up as a
// first-divergent-record report, which reads far better than a hash
// mismatch.
//
// To bless new goldens after an intentional behavioural change:
//
//   RIV_BLESS_GOLDEN=1 ctest -R trace_golden
//
// then inspect the diff of the regenerated .rivtrace files (via
// tools/trace_diff against the old ones) and commit.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "chaos/engine.hpp"
#include "trace/diff.hpp"
#include "trace/trace.hpp"
#include "workload/apps.hpp"
#include "workload/deployment.hpp"

#ifndef RIV_TRACE_GOLDEN_DIR
#error "RIV_TRACE_GOLDEN_DIR must point at tests/trace_golden"
#endif

namespace riv {
namespace {

constexpr AppId kApp{1};
constexpr SensorId kDoor{1};
constexpr ActuatorId kLight{1};

// Everything except the sim kernel's timer-fire feed, which would triple
// the golden size without adding protocol-level information. kSim
// determinism is still covered by ByteIdenticalAcrossRuns below.
constexpr std::uint32_t kGoldenMask =
    trace::kAllComponents & ~trace::component_bit(trace::Component::kSim);

// The running example of the paper: door sensor -> light, on a small
// home. `extra_edge_delay` perturbs one network edge; the perturbation
// test uses it to prove the differ pinpoints behavioural divergence.
std::shared_ptr<trace::Recorder> run_home_scenario(
    appmodel::Guarantee guarantee, bool crash_active_logic,
    Duration extra_edge_delay = Duration{},
    std::uint32_t mask = kGoldenMask) {
  auto rec = std::make_shared<trace::Recorder>(mask);
  trace::Scope scope(*rec);

  workload::HomeDeployment::Options opt;
  opt.seed = 42;
  opt.n_processes = 3;
  workload::HomeDeployment home(opt);

  devices::SensorSpec spec;
  spec.id = kDoor;
  spec.name = "door";
  spec.kind = devices::SensorKind::kDoor;
  spec.tech = devices::Technology::kIp;
  spec.rate_hz = 2.0;
  devices::LinkParams link;
  link.loss_prob = 0.1;
  home.add_sensor(spec, {home.pid(0), home.pid(1)}, link);

  devices::ActuatorSpec light;
  light.id = kLight;
  light.name = "light";
  light.tech = devices::Technology::kIp;
  home.add_actuator(light, {home.pid(0)});
  home.deploy(
      workload::apps::turn_light_on_off(kApp, kDoor, kLight, guarantee));

  home.start();
  if (extra_edge_delay.us > 0) {
    // Apply the perturbation under a masked-out recorder so it does not
    // announce itself in the trace: the divergence the differ reports is
    // then the first *behavioural* consequence (a shifted frame).
    trace::Recorder quiet(0);
    trace::Scope silence(quiet);
    home.net().set_edge_delay(home.pid(0), home.pid(1), extra_edge_delay);
  }
  home.run_for(seconds(3));
  if (crash_active_logic) {
    core::RivuletProcess* active = home.active_logic_process(kApp);
    if (active != nullptr) active->crash();
    trace::emit_text(home.sim().now(), ProcessId{0},
                     trace::Component::kChaos, trace::Kind::kMark,
                     "crash_active_logic");
  }
  home.run_for(seconds(5));
  return rec;
}

// A short full chaos-engine run with the flight recorder on; kSim and
// kNet are masked out so the golden stays protocol-level and compact.
std::shared_ptr<trace::Recorder> run_chaos_scenario() {
  chaos::EngineOptions opt;
  opt.scenario.seed = 7;
  opt.scenario.guarantee = appmodel::Guarantee::kGapless;
  opt.plan.horizon = seconds(12);
  opt.flight = true;
  opt.flight_mask =
      kGoldenMask & ~trace::component_bit(trace::Component::kNet);
  chaos::ChaosResult r = chaos::ChaosEngine(opt).run();
  EXPECT_TRUE(r.ok());
  return r.flight;
}

std::shared_ptr<trace::Recorder> run_scenario(const std::string& name) {
  if (name == "gapless_ring")
    return run_home_scenario(appmodel::Guarantee::kGapless,
                             /*crash_active_logic=*/false);
  if (name == "gap_chain")
    return run_home_scenario(appmodel::Guarantee::kGap,
                             /*crash_active_logic=*/false);
  if (name == "failover")
    return run_home_scenario(appmodel::Guarantee::kGapless,
                             /*crash_active_logic=*/true);
  if (name == "chaos_flight") return run_chaos_scenario();
  ADD_FAILURE() << "unknown scenario " << name;
  return nullptr;
}

std::string golden_path(const std::string& name) {
  return std::string(RIV_TRACE_GOLDEN_DIR) + "/" + name + ".rivtrace";
}

void check_against_golden(const std::string& name) {
  std::shared_ptr<trace::Recorder> rec = run_scenario(name);
  ASSERT_NE(rec, nullptr);
  ASSERT_GT(rec->size(), 0u) << name << " produced an empty trace";

  const std::string path = golden_path(name);
  if (std::getenv("RIV_BLESS_GOLDEN") != nullptr) {
    std::string err;
    ASSERT_TRUE(rec->save(path, &err)) << err;
    GTEST_SKIP() << "blessed new golden: " << path << " (" << rec->size()
                 << " records, hash " << rec->digest() << ")";
  }

  trace::Recorder golden;
  std::string err;
  ASSERT_TRUE(trace::Recorder::load(path, &golden, &err))
      << path << ": " << err
      << "\n(run with RIV_BLESS_GOLDEN=1 to generate goldens)";

  trace::Divergence d = trace::diff(golden.records(), rec->records());
  EXPECT_TRUE(d.identical) << "golden (a) vs current run (b):\n"
                           << trace::render(golden.records(),
                                            rec->records(), d);
  EXPECT_EQ(golden.hash(), rec->hash());
}

TEST(TraceGoldenTest, GaplessRing) { check_against_golden("gapless_ring"); }
TEST(TraceGoldenTest, GapChain) { check_against_golden("gap_chain"); }
TEST(TraceGoldenTest, Failover) { check_against_golden("failover"); }
TEST(TraceGoldenTest, ChaosFlight) { check_against_golden("chaos_flight"); }

// The determinism claim behind the whole harness: the same seed produces
// byte-identical traces — including the sim kernel's timer feed — across
// two runs in the same process.
TEST(TraceGoldenTest, ByteIdenticalAcrossRuns) {
  auto a = run_home_scenario(appmodel::Guarantee::kGapless, false,
                             Duration{}, trace::kAllComponents);
  auto b = run_home_scenario(appmodel::Guarantee::kGapless, false,
                             Duration{}, trace::kAllComponents);
  ASSERT_GT(a->size(), 0u);
  EXPECT_EQ(a->hash(), b->hash());
  EXPECT_EQ(a->encode(), b->encode());
}

// One extra millisecond of delay on a single edge must change observable
// behaviour, and the differ must pinpoint where the two runs part ways.
TEST(TraceGoldenTest, DifferPinpointsEdgeDelayPerturbation) {
  auto base = run_home_scenario(appmodel::Guarantee::kGapless, false);
  auto perturbed = run_home_scenario(appmodel::Guarantee::kGapless, false,
                                     milliseconds(1));
  trace::Divergence d =
      trace::diff(base->records(), perturbed->records());
  ASSERT_FALSE(d.identical);
  // The perturbation is injected right after start(); the first 3
  // seconds of records cannot all match by luck.
  EXPECT_LT(d.index, base->size());
  std::string report =
      trace::render(base->records(), perturbed->records(), d);
  EXPECT_NE(report.find("first divergence at record"), std::string::npos);
}

}  // namespace
}  // namespace riv
