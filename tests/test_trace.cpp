// Unit tests for the flight-recorder trace layer (src/trace): hash
// stability, component masking, the scoped current-recorder mechanism,
// the stable binary encoding (round-trip, corruption rejection, file
// save/load), and the structural differ.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "trace/diff.hpp"
#include "trace/trace.hpp"

namespace riv {
namespace {

using namespace riv::trace;

Record record(std::int64_t us, std::uint16_t pid, Component c, Kind k,
              std::string detail, ProvenanceId prov = {}) {
  return Record{TimePoint{us}, ProcessId{pid}, c, k, prov,
                std::move(detail)};
}

std::vector<Record> sample_records() {
  return {
      record(0, 0, Component::kSim, Kind::kTimerFire, "timer=1"),
      record(1000, 1, Component::kNet, Kind::kSend,
             "type=keepalive src=p1 dst=p2"),
      record(2500, 2, Component::kNet, Kind::kRecv,
             "type=keepalive src=p1 dst=p2"),
      record(3000, 1, Component::kDelivery, Kind::kIngest,
             "app=1 event=s1#0 S=1 V=3", ProvenanceId{1, 0}),
      record(3000, 1, Component::kRuntime, Kind::kDeliver,
             "app=1 event=s1#0", ProvenanceId{1, 0}),
  };
}

TEST(TraceRecorderTest, HashIsStableAcrossIdenticalAppends) {
  Recorder a, b;
  for (const Record& r : sample_records()) {
    a.append(r);
    b.append(r);
  }
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.records(), b.records());
}

TEST(TraceRecorderTest, HashIsSensitiveToEveryField) {
  std::vector<Record> base = sample_records();
  Recorder ref;
  for (const Record& r : base) ref.append(r);

  auto hash_with = [&](Record changed, std::size_t at) {
    Recorder rec;
    for (std::size_t i = 0; i < base.size(); ++i)
      rec.append(i == at ? changed : base[i]);
    return rec.hash();
  };

  Record r = base[3];
  r.at = r.at + Duration{1};
  EXPECT_NE(hash_with(r, 3), ref.hash());
  r = base[3];
  r.process = ProcessId{9};
  EXPECT_NE(hash_with(r, 3), ref.hash());
  r = base[3];
  r.kind = Kind::kFallback;
  EXPECT_NE(hash_with(r, 3), ref.hash());
  r = base[3];
  r.detail += " x";
  EXPECT_NE(hash_with(r, 3), ref.hash());
  r = base[3];
  r.prov = ProvenanceId{2, 7};
  EXPECT_NE(hash_with(r, 3), ref.hash());
}

TEST(TraceRecorderTest, MaskDropsUnwantedComponents) {
  Recorder rec(component_bit(Component::kDelivery) |
               component_bit(Component::kRuntime));
  for (const Record& r : sample_records()) rec.append(r);
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.records()[0].kind, Kind::kIngest);
  EXPECT_EQ(rec.records()[1].kind, Kind::kDeliver);
  EXPECT_FALSE(rec.wants(Component::kNet));
  EXPECT_TRUE(rec.wants(Component::kDelivery));
}

TEST(TraceRecorderTest, EncodeDecodeRoundTrips) {
  Recorder rec;
  for (const Record& r : sample_records()) rec.append(r);
  std::vector<std::byte> buf = rec.encode();

  Recorder back;
  std::string err;
  ASSERT_TRUE(Recorder::decode(buf, &back, &err)) << err;
  EXPECT_EQ(back.records(), rec.records());
  EXPECT_EQ(back.hash(), rec.hash());
}

TEST(TraceRecorderTest, DecodeRejectsCorruptInput) {
  Recorder rec;
  for (const Record& r : sample_records()) rec.append(r);
  std::vector<std::byte> buf = rec.encode();

  Recorder back;
  std::string err;

  // Bad magic.
  std::vector<std::byte> bad = buf;
  bad[0] = std::byte{'X'};
  EXPECT_FALSE(Recorder::decode(bad, &back, &err));

  // Every strict prefix is rejected (truncated records or footer).
  for (std::size_t n = 0; n < buf.size(); ++n) {
    std::vector<std::byte> prefix(buf.begin(),
                                  buf.begin() + static_cast<long>(n));
    EXPECT_FALSE(Recorder::decode(prefix, &back, &err)) << "prefix " << n;
  }

  // A flipped payload byte breaks the footer hash.
  bad = buf;
  bad[buf.size() / 2] ^= std::byte{0x01};
  EXPECT_FALSE(Recorder::decode(bad, &back, &err));
}

TEST(TraceRecorderTest, SaveLoadRoundTripsThroughDisk) {
  Recorder rec;
  for (const Record& r : sample_records()) rec.append(r);

  std::string path =
      testing::TempDir() + "/riv_trace_roundtrip.rivtrace";
  std::string err;
  ASSERT_TRUE(rec.save(path, &err)) << err;

  Recorder back;
  ASSERT_TRUE(Recorder::load(path, &back, &err)) << err;
  EXPECT_EQ(back.records(), rec.records());
  EXPECT_EQ(back.digest(), rec.digest());
  std::remove(path.c_str());
}

TEST(TraceScopeTest, EmitIsANoOpWithoutARecorder) {
  ASSERT_EQ(current(), nullptr);
  EXPECT_FALSE(active(Component::kSim));
  emit(TimePoint{1}, ProcessId{1}, Component::kSim, Kind::kMark, "lost");
  EXPECT_EQ(current(), nullptr);
}

TEST(TraceScopeTest, ScopeInstallsAndNestingRestores) {
  Recorder outer, inner(component_bit(Component::kChaos));
  {
    Scope s1(outer);
    EXPECT_EQ(current(), &outer);
    EXPECT_TRUE(active(Component::kNet));
    emit(TimePoint{1}, ProcessId{1}, Component::kNet, Kind::kSend, "a");
    {
      Scope s2(inner);
      EXPECT_EQ(current(), &inner);
      EXPECT_FALSE(active(Component::kNet));  // masked out in inner
      emit(TimePoint{2}, ProcessId{1}, Component::kNet, Kind::kSend, "b");
      emit(TimePoint{3}, ProcessId{0}, Component::kChaos, Kind::kFault,
           "c");
    }
    EXPECT_EQ(current(), &outer);
  }
  EXPECT_EQ(current(), nullptr);
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer.records()[0].detail, "a");
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner.records()[0].detail, "c");
}

TEST(TraceDiffTest, IdenticalTracesDiffClean) {
  std::vector<Record> a = sample_records();
  Divergence d = diff(a, a);
  EXPECT_TRUE(d.identical);
  EXPECT_NE(render(a, a, d).find("traces identical"), std::string::npos);
}

TEST(TraceDiffTest, ReportsFirstDivergentFieldAndIndex) {
  std::vector<Record> a = sample_records();
  std::vector<Record> b = a;
  b[3].detail = "app=1 event=s1#0 S=2 V=3";
  b[4].at = b[4].at + Duration{77};  // later difference must not mask it

  Divergence d = diff(a, b);
  ASSERT_FALSE(d.identical);
  EXPECT_EQ(d.index, 3u);
  EXPECT_EQ(d.field, "detail");

  std::string report = render(a, b, d, 2);
  EXPECT_NE(report.find("first divergence at record 3"), std::string::npos);
  EXPECT_NE(report.find("field: detail"), std::string::npos);
  EXPECT_NE(report.find("S=1"), std::string::npos);
  EXPECT_NE(report.find("S=2"), std::string::npos);
}

TEST(TraceDiffTest, PrefixTraceReportsLengthDivergence) {
  std::vector<Record> a = sample_records();
  std::vector<Record> b(a.begin(), a.begin() + 3);
  Divergence d = diff(a, b);
  ASSERT_FALSE(d.identical);
  EXPECT_EQ(d.index, 3u);
  EXPECT_EQ(d.field, "length");
  EXPECT_NE(render(a, b, d).find("<end of trace: 3 records>"),
            std::string::npos);
}

}  // namespace
}  // namespace riv
