// Unit tests for the flight-recorder trace layer (src/trace): hash
// stability, component masking, the scoped current-recorder mechanism,
// the stable binary encoding (round-trip, corruption rejection, file
// save/load), and the structural differ.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "trace/diff.hpp"
#include "trace/trace.hpp"

namespace riv {
namespace {

using namespace riv::trace;

Record record(std::int64_t us, std::uint16_t pid, Component c, Kind k,
              std::string detail, ProvenanceId prov = {}) {
  return Record{TimePoint{us}, ProcessId{pid}, c, k, prov,
                std::move(detail)};
}

std::vector<Record> sample_records() {
  return {
      record(0, 0, Component::kSim, Kind::kTimerFire, "timer=1"),
      record(1000, 1, Component::kNet, Kind::kSend,
             "type=keepalive src=p1 dst=p2"),
      record(2500, 2, Component::kNet, Kind::kRecv,
             "type=keepalive src=p1 dst=p2"),
      record(3000, 1, Component::kDelivery, Kind::kIngest,
             "app=1 event=s1#0 S=1 V=3", ProvenanceId{1, 0}),
      record(3000, 1, Component::kRuntime, Kind::kDeliver,
             "app=1 event=s1#0", ProvenanceId{1, 0}),
  };
}

TEST(TraceRecorderTest, HashIsStableAcrossIdenticalAppends) {
  Recorder a, b;
  for (const Record& r : sample_records()) {
    a.append(r);
    b.append(r);
  }
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.records(), b.records());
}

TEST(TraceRecorderTest, HashIsSensitiveToEveryField) {
  std::vector<Record> base = sample_records();
  Recorder ref;
  for (const Record& r : base) ref.append(r);

  auto hash_with = [&](Record changed, std::size_t at) {
    Recorder rec;
    for (std::size_t i = 0; i < base.size(); ++i)
      rec.append(i == at ? changed : base[i]);
    return rec.hash();
  };

  Record r = base[3];
  r.at = r.at + Duration{1};
  EXPECT_NE(hash_with(r, 3), ref.hash());
  r = base[3];
  r.process = ProcessId{9};
  EXPECT_NE(hash_with(r, 3), ref.hash());
  r = base[3];
  r.kind = Kind::kFallback;
  EXPECT_NE(hash_with(r, 3), ref.hash());
  r = base[3];
  r.detail += " x";
  EXPECT_NE(hash_with(r, 3), ref.hash());
  r = base[3];
  r.prov = ProvenanceId{2, 7};
  EXPECT_NE(hash_with(r, 3), ref.hash());
}

TEST(TraceRecorderTest, MaskDropsUnwantedComponents) {
  Recorder rec(component_bit(Component::kDelivery) |
               component_bit(Component::kRuntime));
  for (const Record& r : sample_records()) rec.append(r);
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.records()[0].kind, Kind::kIngest);
  EXPECT_EQ(rec.records()[1].kind, Kind::kDeliver);
  EXPECT_FALSE(rec.wants(Component::kNet));
  EXPECT_TRUE(rec.wants(Component::kDelivery));
}

TEST(TraceRecorderTest, EncodeDecodeRoundTrips) {
  Recorder rec;
  for (const Record& r : sample_records()) rec.append(r);
  std::vector<std::byte> buf = rec.encode();

  Recorder back;
  std::string err;
  ASSERT_TRUE(Recorder::decode(buf, &back, &err)) << err;
  EXPECT_EQ(back.records(), rec.records());
  EXPECT_EQ(back.hash(), rec.hash());
}

TEST(TraceRecorderTest, DecodeRejectsCorruptInput) {
  Recorder rec;
  for (const Record& r : sample_records()) rec.append(r);
  std::vector<std::byte> buf = rec.encode();

  Recorder back;
  std::string err;

  // Bad magic.
  std::vector<std::byte> bad = buf;
  bad[0] = std::byte{'X'};
  EXPECT_FALSE(Recorder::decode(bad, &back, &err));

  // Every strict prefix is rejected (truncated records or footer).
  for (std::size_t n = 0; n < buf.size(); ++n) {
    std::vector<std::byte> prefix(buf.begin(),
                                  buf.begin() + static_cast<long>(n));
    EXPECT_FALSE(Recorder::decode(prefix, &back, &err)) << "prefix " << n;
  }

  // A flipped payload byte breaks the footer hash.
  bad = buf;
  bad[buf.size() / 2] ^= std::byte{0x01};
  EXPECT_FALSE(Recorder::decode(bad, &back, &err));
}

TEST(TraceRecorderTest, SaveLoadRoundTripsThroughDisk) {
  Recorder rec;
  for (const Record& r : sample_records()) rec.append(r);

  std::string path =
      testing::TempDir() + "/riv_trace_roundtrip.rivtrace";
  std::string err;
  ASSERT_TRUE(rec.save(path, &err)) << err;

  Recorder back;
  ASSERT_TRUE(Recorder::load(path, &back, &err)) << err;
  EXPECT_EQ(back.records(), rec.records());
  EXPECT_EQ(back.digest(), rec.digest());
  std::remove(path.c_str());
}

TEST(TraceScopeTest, EmitIsANoOpWithoutARecorder) {
  ASSERT_EQ(current(), nullptr);
  EXPECT_FALSE(active(Component::kSim));
  emit_text(TimePoint{1}, ProcessId{1}, Component::kSim, Kind::kMark,
            "lost");
  EXPECT_EQ(current(), nullptr);
}

TEST(TraceScopeTest, ScopeInstallsAndNestingRestores) {
  Recorder outer, inner(component_bit(Component::kChaos));
  {
    Scope s1(outer);
    EXPECT_EQ(current(), &outer);
    EXPECT_TRUE(active(Component::kNet));
    emit_text(TimePoint{1}, ProcessId{1}, Component::kNet, Kind::kSend,
              "a");
    {
      Scope s2(inner);
      EXPECT_EQ(current(), &inner);
      EXPECT_FALSE(active(Component::kNet));  // masked out in inner
      emit_text(TimePoint{2}, ProcessId{1}, Component::kNet, Kind::kSend,
                "b");
      emit_text(TimePoint{3}, ProcessId{0}, Component::kChaos,
                Kind::kFault, "c");
    }
    EXPECT_EQ(current(), &outer);
  }
  EXPECT_EQ(current(), nullptr);
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer.records()[0].detail, "a");
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner.records()[0].detail, "c");
}

// The typed variadic emit API must render exactly the canonical
// "key=value" detail strings the v2 recorder stored eagerly — every
// value type in the key table is exercised here.
TEST(TraceRecorderTest, TypedFieldsRenderCanonicalDetails) {
  Recorder rec;
  rec.append(TimePoint{10}, ProcessId{0}, Component::kSim,
             Kind::kTimerFire, fu(Key::kTimer, 42));
  rec.append(TimePoint{20}, ProcessId{1}, Component::kNet, Kind::kSend,
             fs(Key::kType, "keepalive"), fp(Key::kSrc, ProcessId{1}),
             fp(Key::kDst, ProcessId{2}));
  rec.append(TimePoint{30}, ProcessId{2}, Component::kNet, Kind::kDrop,
             fs(Key::kType, "ring_event"), fp(Key::kSrc, ProcessId{1}),
             fp(Key::kDst, ProcessId{2}), fs(Key::kReason, "edge_loss"));
  rec.append(TimePoint{40}, ProcessId{0}, Component::kNet, Kind::kLink,
             fs(Key::kText, "edge_delay"), fp(Key::kSrc, ProcessId{1}),
             fp(Key::kDst, ProcessId{3}), fi(Key::kExtraUs, -250));
  rec.append(TimePoint{50}, ProcessId{1}, Component::kDelivery,
             Kind::kIngest, ProvenanceId{1, 7},
             fu(Key::kApp, 1), fe(Key::kEvent, EventId{SensorId{1}, 7}),
             fs(Key::kSrcName, "device"), fu(Key::kSeen, 1),
             fu(Key::kNeed, 3));
  rec.append(TimePoint{60}, ProcessId{0}, Component::kDevice,
             Kind::kActuated, ProvenanceId{1, 7},
             fc(Key::kCmd, CommandId{ProcessId{2}, 9}),
             fa(Key::kActuator, ActuatorId{4}), fu(Key::kAccepted, 1),
             fu(Key::kDup, 0));
  std::vector<ProcessId> view{ProcessId{1}, ProcessId{2}, ProcessId{3}};
  rec.append(TimePoint{70}, ProcessId{1}, Component::kMembership,
             Kind::kView, fv(Key::kView, view));
  rec.append(TimePoint{80}, ProcessId{0}, Component::kChaos, Kind::kFault,
             fu(Key::kFaultId, 3), fs(Key::kText, "crash p2 (noop)"));
  rec.append(TimePoint{90}, ProcessId{0}, Component::kRuntime,
             Kind::kCrash);

  std::vector<Record> rs = rec.records();
  ASSERT_EQ(rs.size(), 9u);
  EXPECT_EQ(rs[0].detail, "timer=42");
  EXPECT_EQ(rs[1].detail, "type=keepalive src=p1 dst=p2");
  EXPECT_EQ(rs[2].detail, "type=ring_event src=p1 dst=p2 reason=edge_loss");
  EXPECT_EQ(rs[3].detail, "edge_delay src=p1 dst=p3 extra_us=-250");
  EXPECT_EQ(rs[4].detail, "app=1 event=s1#7 src=device S=1 V=3");
  EXPECT_EQ(rs[4].prov, (ProvenanceId{1, 7}));
  EXPECT_EQ(rs[5].detail, "cmd=p2!9 actuator=a4 accepted=1 dup=0");
  EXPECT_EQ(rs[6].detail, "view=p1+p2+p3");
  EXPECT_EQ(rs[7].detail, "id=3 crash p2 (noop)");
  EXPECT_EQ(rs[8].detail, "");
  for (const Record& r : rs) {
    EXPECT_EQ(r.at.us % 10, 0);
  }
  // The packed trace round-trips through encode/decode unchanged.
  Recorder back;
  std::string err;
  ASSERT_TRUE(Recorder::decode(rec.encode(), &back, &err)) << err;
  EXPECT_EQ(back.records(), rs);
  EXPECT_EQ(back.encode(), rec.encode());
}

// Old-format traces must be refused with an actionable message, not a
// generic parse error (satellite of the v3 migration).
TEST(TraceRecorderTest, RejectsOldFormatVersionsWithExactMessage) {
  for (std::uint32_t old : {1u, 2u}) {
    std::vector<std::byte> buf;
    for (char c : {'R', 'I', 'V', 'T'}) buf.push_back(std::byte(c));
    for (int i = 0; i < 4; ++i)
      buf.push_back(static_cast<std::byte>((old >> (8 * i)) & 0xff));
    buf.resize(buf.size() + 16);  // stale count/records bytes
    Recorder back;
    std::string err;
    ASSERT_FALSE(Recorder::decode(buf, &back, &err));
    EXPECT_EQ(err, "unsupported trace version " + std::to_string(old) +
                       " (this build reads 3)");
  }
}

TEST(TraceRecorderTest, TrailingGarbageAfterFooterIsRejected) {
  Recorder rec;
  for (const Record& r : sample_records()) rec.append(r);
  std::vector<std::byte> buf = rec.encode();
  buf.push_back(std::byte{0x00});
  Recorder back;
  std::string err;
  EXPECT_FALSE(Recorder::decode(buf, &back, &err));
  EXPECT_NE(err.find("trailing"), std::string::npos);
}

TEST(TraceRecorderTest, AppendAfterLoadExtendsTheTrace) {
  Recorder rec;
  for (const Record& r : sample_records()) rec.append(r);
  Recorder back;
  std::string err;
  ASSERT_TRUE(Recorder::decode(rec.encode(), &back, &err)) << err;
  back.append(TimePoint{9999}, ProcessId{2}, Component::kRuntime,
              Kind::kPromote, fu(Key::kApp, 1));
  std::vector<Record> rs = back.records();
  ASSERT_EQ(rs.size(), sample_records().size() + 1);
  EXPECT_EQ(rs.back().detail, "app=1");
  EXPECT_EQ(rs.back().at.us, 9999);
}

// Ring mode: bounded memory, most recent records retained, and the
// trimmed trace still encodes/decodes as a valid v3 file.
TEST(TraceRecorderTest, RingModeKeepsTheMostRecentRecords) {
  Recorder rec;
  rec.set_ring_limit(64 * 1024);  // one chunk's worth
  // Each record carries a fat payload so several 64KB chunks fill up.
  std::string pad(200, 'x');
  const int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    rec.append(TimePoint{i}, ProcessId{1}, Component::kChaos, Kind::kMark,
               fs(Key::kText, pad), fu(Key::kFaultId,
                                       static_cast<std::uint64_t>(i)));
  }
  EXPECT_GT(rec.dropped_records(), 0u);
  EXPECT_EQ(rec.size() + rec.dropped_records(),
            static_cast<std::uint64_t>(kN));
  EXPECT_LE(rec.payload_bytes(), 2u * 64 * 1024);  // ring + open chunk
  std::vector<Record> rs = rec.records();
  ASSERT_EQ(rs.size(), rec.size());
  // The retained suffix ends at the newest record and is contiguous.
  EXPECT_EQ(rs.back().at.us, kN - 1);
  for (std::size_t i = 1; i < rs.size(); ++i)
    EXPECT_EQ(rs[i].at.us, rs[i - 1].at.us + 1);
  Recorder back;
  std::string err;
  ASSERT_TRUE(Recorder::decode(rec.encode(), &back, &err)) << err;
  EXPECT_EQ(back.records(), rs);
}

// Streaming sink: the file written incrementally must be byte-identical
// to what an in-memory recorder fed the same records would encode().
TEST(TraceRecorderTest, StreamingSinkMatchesInMemoryEncoding) {
  std::string path = testing::TempDir() + "/riv_trace_stream.rivtrace";
  Recorder streamed;
  std::string err;
  ASSERT_TRUE(streamed.stream_to(path, &err)) << err;
  Recorder memory;
  std::string pad(100, 'y');
  for (int i = 0; i < 3000; ++i) {  // spans multiple flushed chunks
    streamed.append(TimePoint{i * 10}, ProcessId{1}, Component::kDelivery,
                    Kind::kIngest, fu(Key::kApp, 1),
                    fs(Key::kSrcName, pad));
    memory.append(TimePoint{i * 10}, ProcessId{1}, Component::kDelivery,
                  Kind::kIngest, fu(Key::kApp, 1),
                  fs(Key::kSrcName, pad));
  }
  // While streaming, memory stays bounded to roughly one chunk.
  EXPECT_TRUE(streamed.streaming());
  ASSERT_TRUE(streamed.finish(&err)) << err;
  EXPECT_EQ(streamed.hash(), memory.hash());

  std::vector<std::byte> expected = memory.encode();
  Recorder back;
  ASSERT_TRUE(Recorder::load(path, &back, &err)) << err;
  EXPECT_EQ(back.encode(), expected);
  EXPECT_EQ(back.records(), memory.records());
  EXPECT_EQ(back.hash(), memory.hash());
  std::remove(path.c_str());
}

TEST(TraceDiffTest, IdenticalTracesDiffClean) {
  std::vector<Record> a = sample_records();
  Divergence d = diff(a, a);
  EXPECT_TRUE(d.identical);
  EXPECT_NE(render(a, a, d).find("traces identical"), std::string::npos);
}

TEST(TraceDiffTest, ReportsFirstDivergentFieldAndIndex) {
  std::vector<Record> a = sample_records();
  std::vector<Record> b = a;
  b[3].detail = "app=1 event=s1#0 S=2 V=3";
  b[4].at = b[4].at + Duration{77};  // later difference must not mask it

  Divergence d = diff(a, b);
  ASSERT_FALSE(d.identical);
  EXPECT_EQ(d.index, 3u);
  EXPECT_EQ(d.field, "detail");

  std::string report = render(a, b, d, 2);
  EXPECT_NE(report.find("first divergence at record 3"), std::string::npos);
  EXPECT_NE(report.find("field: detail"), std::string::npos);
  EXPECT_NE(report.find("S=1"), std::string::npos);
  EXPECT_NE(report.find("S=2"), std::string::npos);
}

TEST(TraceDiffTest, PrefixTraceReportsLengthDivergence) {
  std::vector<Record> a = sample_records();
  std::vector<Record> b(a.begin(), a.begin() + 3);
  Divergence d = diff(a, b);
  ASSERT_FALSE(d.identical);
  EXPECT_EQ(d.index, 3u);
  EXPECT_EQ(d.field, "length");
  EXPECT_NE(render(a, b, d).find("<end of trace: 3 records>"),
            std::string::npos);
}

}  // namespace
}  // namespace riv
