// Tests for the logic-node execution engine: operator DAGs, trigger flow,
// combiner gating, downstream emission, actuation, staleness reporting.
#include <gtest/gtest.h>

#include "appmodel/logic.hpp"

namespace riv::appmodel {
namespace {

devices::SensorEvent ev(std::uint16_t sensor, std::uint32_t seq,
                        double value, TimePoint t = {}) {
  devices::SensorEvent e;
  e.id = {SensorId{sensor}, seq};
  e.emitted_at = t;
  e.value = value;
  e.payload_size = 4;
  return e;
}

struct LogicFixture : ::testing::Test {
  LogicFixture() : sim(3) {}

  LogicInstance::Callbacks callbacks() {
    LogicInstance::Callbacks cb;
    cb.self = ProcessId{1};
    cb.next_command_id = [this] { return CommandId{ProcessId{1}, seq++}; };
    cb.command_sink = [this](const ActuatorEdge& edge,
                             const devices::Command& cmd) {
      issued.push_back({edge.actuator, cmd});
    };
    return cb;
  }

  sim::Simulation sim;
  std::uint32_t seq{1};
  std::vector<std::pair<ActuatorId, devices::Command>> issued;
};

TEST_F(LogicFixture, CountWindowOneFiresPerEvent) {
  AppBuilder app(AppId{1}, "t");
  auto op = app.add_operator("op");
  op.add_sensor(SensorId{1}, Guarantee::kGapless, WindowSpec::count_window(1));
  op.add_actuator(ActuatorId{1}, Guarantee::kGapless);
  op.handle_triggered_window(
      [](const std::vector<StreamWindow>& w, TriggerContext& ctx) {
        ctx.actuate(ActuatorId{1}, w[0].events[0].value);
      });
  AppGraph graph = app.build();
  LogicInstance logic(graph, sim, callbacks());
  logic.start();
  for (std::uint32_t i = 1; i <= 5; ++i)
    logic.on_sensor_event(ev(1, i, static_cast<double>(i)));
  EXPECT_EQ(logic.triggers_fired(), 5u);
  ASSERT_EQ(issued.size(), 5u);
  EXPECT_EQ(issued[4].second.value, 5.0);
  EXPECT_EQ(logic.events_consumed(), 5u);
}

TEST_F(LogicFixture, CountWindowThreeBatches) {
  AppBuilder app(AppId{1}, "t");
  auto op = app.add_operator("op");
  op.add_sensor(SensorId{1}, Guarantee::kGap, WindowSpec::count_window(3));
  int batches = 0;
  op.handle_triggered_window(
      [&batches](const std::vector<StreamWindow>& w, TriggerContext&) {
        ASSERT_EQ(w[0].events.size(), 3u);
        ++batches;
      });
  AppGraph graph = app.build();
  LogicInstance logic(graph, sim, callbacks());
  logic.start();
  for (std::uint32_t i = 1; i <= 9; ++i) logic.on_sensor_event(ev(1, i, 0));
  EXPECT_EQ(batches, 3);
}

TEST_F(LogicFixture, PeriodicTriggerDrivenByTimer) {
  AppBuilder app(AppId{1}, "t");
  auto op = app.add_operator("op");
  op.add_sensor(SensorId{1}, Guarantee::kGap,
                WindowSpec::time_window(seconds(1)));
  int fired = 0;
  op.handle_triggered_window(
      [&fired](const std::vector<StreamWindow>&, TriggerContext&) {
        ++fired;
      });
  AppGraph graph = app.build();
  LogicInstance logic(graph, sim, callbacks());
  logic.start();
  // One event every 400 ms for 5 s.
  for (int i = 0; i < 12; ++i) {
    sim.schedule_at(TimePoint{milliseconds(400 * (i + 1)).us},
                    [&logic, this, i] {
                      logic.on_sensor_event(ev(1, (std::uint32_t)i + 1, 1.0,
                                               sim.now()));
                    });
  }
  sim.run_until(TimePoint{seconds(5).us});
  // Periodic windows at 1 s: roughly one trigger per second with data.
  EXPECT_GE(fired, 4);
  EXPECT_LE(fired, 5);
}

TEST_F(LogicFixture, EmptyPeriodicWindowDoesNotTrigger) {
  AppBuilder app(AppId{1}, "t");
  auto op = app.add_operator("op");
  op.add_sensor(SensorId{1}, Guarantee::kGap,
                WindowSpec::time_window(seconds(1)));
  int fired = 0;
  op.handle_triggered_window(
      [&fired](const std::vector<StreamWindow>&, TriggerContext&) {
        ++fired;
      });
  AppGraph graph = app.build();
  LogicInstance logic(graph, sim, callbacks());
  logic.start();
  sim.run_until(TimePoint{seconds(10).us});  // no events at all
  EXPECT_EQ(fired, 0);
}

TEST_F(LogicFixture, FTCombinerGatesMultiStreamDelivery) {
  AppBuilder app(AppId{1}, "t");
  auto op = app.add_operator("op", std::make_unique<FTCombiner>(1));
  op.add_sensor(SensorId{1}, Guarantee::kGap, WindowSpec::count_window(1));
  op.add_sensor(SensorId{2}, Guarantee::kGap, WindowSpec::count_window(1));
  op.add_sensor(SensorId{3}, Guarantee::kGap, WindowSpec::count_window(1));
  std::vector<std::size_t> stream_counts;
  op.handle_triggered_window(
      [&](const std::vector<StreamWindow>& w, TriggerContext&) {
        stream_counts.push_back(w.size());
      });
  AppGraph graph = app.build();
  LogicInstance logic(graph, sim, callbacks());
  logic.start();
  logic.on_sensor_event(ev(1, 1, 1.0));  // 1 of 3 ready, f=1 needs 2
  EXPECT_TRUE(stream_counts.empty());
  EXPECT_EQ(logic.combiner_blocked(), 1u);
  logic.on_sensor_event(ev(2, 1, 1.0));  // 2 of 3 ready -> deliver
  ASSERT_EQ(stream_counts.size(), 1u);
  EXPECT_EQ(stream_counts[0], 2u);
  // Pending cleared after delivery; a single new event blocks again.
  logic.on_sensor_event(ev(3, 1, 1.0));
  EXPECT_EQ(stream_counts.size(), 1u);
}

TEST_F(LogicFixture, OperatorDagPropagatesEmissions) {
  AppBuilder app(AppId{1}, "t");
  auto source = app.add_operator("source");
  source.add_sensor(SensorId{1}, Guarantee::kGap, WindowSpec::count_window(2));
  source.handle_triggered_window(
      [](const std::vector<StreamWindow>& w, TriggerContext& ctx) {
        double sum = 0;
        for (const auto& e : w[0].events) sum += e.value;
        ctx.emit(sum);
      });
  auto sink = app.add_operator("sink");
  sink.add_upstream_operator("source", WindowSpec::count_window(1));
  sink.add_actuator(ActuatorId{1}, Guarantee::kGap);
  sink.handle_triggered_window(
      [](const std::vector<StreamWindow>& w, TriggerContext& ctx) {
        ctx.actuate(ActuatorId{1}, w[0].events[0].value);
      });
  AppGraph graph = app.build();
  LogicInstance logic(graph, sim, callbacks());
  logic.start();
  logic.on_sensor_event(ev(1, 1, 2.0));
  logic.on_sensor_event(ev(1, 2, 3.0));
  ASSERT_EQ(issued.size(), 1u);
  EXPECT_EQ(issued[0].second.value, 5.0);
}

TEST_F(LogicFixture, TestAndSetCommandsCarryExpectedState) {
  AppBuilder app(AppId{1}, "t");
  auto op = app.add_operator("op");
  op.add_sensor(SensorId{1}, Guarantee::kGapless, WindowSpec::count_window(1));
  op.add_actuator(ActuatorId{7}, Guarantee::kGapless);
  op.handle_triggered_window(
      [](const std::vector<StreamWindow>&, TriggerContext& ctx) {
        ctx.actuate_test_and_set(ActuatorId{7}, 0.0, 1.0);
      });
  AppGraph graph = app.build();
  LogicInstance logic(graph, sim, callbacks());
  logic.start();
  logic.on_sensor_event(ev(1, 1, 1.0));
  ASSERT_EQ(issued.size(), 1u);
  EXPECT_TRUE(issued[0].second.test_and_set);
  EXPECT_EQ(issued[0].second.expected, 0.0);
  EXPECT_EQ(issued[0].second.value, 1.0);
  EXPECT_EQ(issued[0].first, ActuatorId{7});
}

TEST_F(LogicFixture, CommandIdsAreUnique) {
  AppBuilder app(AppId{1}, "t");
  auto op = app.add_operator("op");
  op.add_sensor(SensorId{1}, Guarantee::kGap, WindowSpec::count_window(1));
  op.add_actuator(ActuatorId{1}, Guarantee::kGap);
  op.handle_triggered_window(
      [](const std::vector<StreamWindow>&, TriggerContext& ctx) {
        ctx.actuate(ActuatorId{1}, 1.0);
      });
  AppGraph graph = app.build();
  LogicInstance logic(graph, sim, callbacks());
  logic.start();
  for (std::uint32_t i = 1; i <= 10; ++i) logic.on_sensor_event(ev(1, i, 1));
  std::set<CommandId> ids;
  for (const auto& [act, cmd] : issued) ids.insert(cmd.id);
  EXPECT_EQ(ids.size(), 10u);
}

TEST_F(LogicFixture, StalenessHandlerInvoked) {
  AppBuilder app(AppId{1}, "t");
  auto op = app.add_operator("op");
  op.add_sensor(SensorId{1}, Guarantee::kGapless, WindowSpec::count_window(1),
                PollingPolicy{seconds(10)});
  op.handle_triggered_window(
      [](const std::vector<StreamWindow>&, TriggerContext&) {});
  AppGraph graph = app.build();
  LogicInstance logic(graph, sim, callbacks());
  logic.start();
  SensorId stale_sensor{};
  std::uint32_t stale_epoch = 0;
  logic.set_staleness_handler([&](SensorId s, std::uint32_t e) {
    stale_sensor = s;
    stale_epoch = e;
  });
  logic.on_staleness_violation(SensorId{1}, 42);
  EXPECT_EQ(stale_sensor, SensorId{1});
  EXPECT_EQ(stale_epoch, 42u);
  EXPECT_EQ(logic.staleness_violations(), 1u);
}

TEST_F(LogicFixture, DestructionCancelsPeriodicTimers) {
  AppBuilder app(AppId{1}, "t");
  auto op = app.add_operator("op");
  op.add_sensor(SensorId{1}, Guarantee::kGap,
                WindowSpec::time_window(seconds(1)));
  op.handle_triggered_window(
      [](const std::vector<StreamWindow>&, TriggerContext&) {});
  AppGraph graph = app.build();
  {
    LogicInstance logic(graph, sim, callbacks());
    logic.start();
  }  // destroyed: periodic trigger must not fire into freed memory
  sim.run_until(TimePoint{seconds(5).us});  // would crash if dangling
}

TEST(AppGraphValidate, RejectsCycles) {
  AppBuilder app(AppId{1}, "cyclic");
  auto a = app.add_operator("a");
  auto b = app.add_operator("b");
  a.add_upstream_operator("b", WindowSpec::count_window(1));
  b.add_upstream_operator("a", WindowSpec::count_window(1));
  EXPECT_DEATH(app.build(), "acyclic");
}

TEST(AppGraphValidate, RejectsUnknownOperatorEdge) {
  AppBuilder app(AppId{1}, "bad");
  auto a = app.add_operator("a");
  a.add_sensor(SensorId{1}, Guarantee::kGap, WindowSpec::count_window(1));
  AppGraph g = app.build();
  g.sensor_edges.push_back(appmodel::SensorEdge{
      SensorId{2}, Guarantee::kGap, WindowSpec::count_window(1), {}, "nope"});
  EXPECT_DEATH(g.validate(), "unknown operator");
}

}  // namespace
}  // namespace riv::appmodel
