// Chaos seed-corpus regression: replay every seed in tests/seeds.txt
// through the full chaos engine with complete invariant checking.
//
// The corpus holds seeds whose generated fault schedules proved
// interesting in offline sweeps (densest fault schedules, heaviest
// failover replay). They all ran clean when committed; this test keeps
// them clean — and deterministic — forever. A failure prints the exact
// one-line repro.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/engine.hpp"
#include "trace/provenance.hpp"

#ifndef RIV_CHAOS_SEEDS_FILE
#error "RIV_CHAOS_SEEDS_FILE must point at tests/seeds.txt"
#endif
#ifndef RIV_CHAOS_SEEDS_BYZANTINE_FILE
#error \
    "RIV_CHAOS_SEEDS_BYZANTINE_FILE must point at tests/seeds_byzantine.txt"
#endif

namespace riv {
namespace {

struct CorpusEntry {
  std::uint64_t seed{0};
  appmodel::Guarantee guarantee{appmodel::Guarantee::kGapless};
  std::int64_t horizon_s{45};
};

std::vector<CorpusEntry> load_corpus(const char* path = RIV_CHAOS_SEEDS_FILE) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::vector<CorpusEntry> out;
  std::string line;
  while (std::getline(f, line)) {
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    CorpusEntry e;
    std::string guarantee;
    if (!(ss >> e.seed >> guarantee >> e.horizon_s)) continue;
    EXPECT_TRUE(guarantee == "gapless" || guarantee == "gap")
        << "bad guarantee '" << guarantee << "' in seeds.txt";
    e.guarantee = guarantee == "gap" ? appmodel::Guarantee::kGap
                                     : appmodel::Guarantee::kGapless;
    out.push_back(e);
  }
  return out;
}

TEST(ChaosRegressionTest, CorpusIsNonTrivial) {
  std::vector<CorpusEntry> corpus = load_corpus();
  EXPECT_GE(corpus.size(), 5u);
}

TEST(ChaosRegressionTest, EverySeedInCorpusRunsClean) {
  for (const CorpusEntry& e : load_corpus()) {
    chaos::EngineOptions opt;
    opt.scenario.seed = e.seed;
    opt.scenario.guarantee = e.guarantee;
    opt.plan.horizon = seconds(e.horizon_s);
    chaos::ChaosResult r = chaos::ChaosEngine(opt).run();

    const char* g =
        e.guarantee == appmodel::Guarantee::kGap ? "gap" : "gapless";
    EXPECT_TRUE(r.quiesced) << "seed " << e.seed << " did not quiesce";
    for (const chaos::Violation& v : r.violations)
      ADD_FAILURE() << "seed " << e.seed << " (" << g
                    << "): " << chaos::to_string(v) << "\n  repro: "
                    << "chaos_run --seed " << e.seed << " --guarantee " << g
                    << " --duration " << e.horizon_s;
    EXPECT_GT(r.faults_injected, 0u) << "seed " << e.seed;
    EXPECT_GT(r.delivered, 0u) << "seed " << e.seed;

    // Replay determinism: the same seed must reproduce the same fault
    // trace and end state, or the corpus is not a regression oracle.
    chaos::ChaosResult r2 = chaos::ChaosEngine(opt).run();
    EXPECT_EQ(r.trace_hash, r2.trace_hash)
        << "seed " << e.seed << " (" << g << ") is nondeterministic";
  }
}

// --- Byzantine corpus ----------------------------------------------------
// tests/seeds_byzantine.txt replays with the attacker armed against the
// defended home: invariants stay clean, the run quiesces, the replay is
// deterministic, AND the integrity audit accounts for 100% of the
// injected attacks with no unattributed detector evidence.

chaos::EngineOptions byzantine_options(const CorpusEntry& e) {
  chaos::EngineOptions opt;
  opt.scenario.seed = e.seed;
  opt.scenario.guarantee = e.guarantee;
  opt.plan.horizon = seconds(e.horizon_s);
  // Mirror of `--kinds crash,spoof-event,replay-event,corrupt-begin`
  // (the kind set seeds_byzantine.txt documents).
  opt.plan.crashes = true;
  opt.plan.spoof_events = true;
  opt.plan.replay_events = true;
  opt.plan.corrupt_process = true;
  opt.flight = true;
  return opt;
}

TEST(ChaosRegressionTest, ByzantineCorpusIsNonTrivial) {
  std::vector<CorpusEntry> corpus =
      load_corpus(RIV_CHAOS_SEEDS_BYZANTINE_FILE);
  EXPECT_GE(corpus.size(), 5u);
}

TEST(ChaosRegressionTest, ByzantineCorpusRunsCleanAndFullyAudited) {
  for (const CorpusEntry& e : load_corpus(RIV_CHAOS_SEEDS_BYZANTINE_FILE)) {
    chaos::EngineOptions opt = byzantine_options(e);
    chaos::ChaosResult r = chaos::ChaosEngine(opt).run();

    const char* g =
        e.guarantee == appmodel::Guarantee::kGap ? "gap" : "gapless";
    const std::string repro =
        "chaos_run --seed " + std::to_string(e.seed) + " --guarantee " + g +
        " --duration " + std::to_string(e.horizon_s) +
        " --kinds crash,spoof-event,replay-event,corrupt-begin";
    EXPECT_TRUE(r.quiesced)
        << "seed " << e.seed << " did not quiesce\n  repro: " << repro;
    for (const chaos::Violation& v : r.violations)
      ADD_FAILURE() << "seed " << e.seed << " (" << g
                    << "): " << chaos::to_string(v)
                    << "\n  repro: " << repro;
    EXPECT_GT(r.byzantine_attacks, 0u)
        << "seed " << e.seed << " injected no attacks; corpus entry stale";

    ASSERT_TRUE(r.flight != nullptr);
    trace::Audit au = trace::audit(r.flight->records());
    EXPECT_EQ(au.attacks, r.byzantine_attacks) << "seed " << e.seed;
    EXPECT_TRUE(au.all_accounted())
        << "seed " << e.seed << " audit failure\n"
        << trace::render(au) << "  repro: " << repro << " --trace";

    chaos::ChaosResult r2 = chaos::ChaosEngine(opt).run();
    EXPECT_EQ(r.trace_hash, r2.trace_hash)
        << "seed " << e.seed << " (" << g << ") is nondeterministic";
  }
}

}  // namespace
}  // namespace riv
