// Chaos seed-corpus regression: replay every seed in tests/seeds.txt
// through the full chaos engine with complete invariant checking.
//
// The corpus holds seeds whose generated fault schedules proved
// interesting in offline sweeps (densest fault schedules, heaviest
// failover replay). They all ran clean when committed; this test keeps
// them clean — and deterministic — forever. A failure prints the exact
// one-line repro.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/engine.hpp"

#ifndef RIV_CHAOS_SEEDS_FILE
#error "RIV_CHAOS_SEEDS_FILE must point at tests/seeds.txt"
#endif

namespace riv {
namespace {

struct CorpusEntry {
  std::uint64_t seed{0};
  appmodel::Guarantee guarantee{appmodel::Guarantee::kGapless};
  std::int64_t horizon_s{45};
};

std::vector<CorpusEntry> load_corpus() {
  std::ifstream f(RIV_CHAOS_SEEDS_FILE);
  EXPECT_TRUE(f.good()) << "cannot open " << RIV_CHAOS_SEEDS_FILE;
  std::vector<CorpusEntry> out;
  std::string line;
  while (std::getline(f, line)) {
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    CorpusEntry e;
    std::string guarantee;
    if (!(ss >> e.seed >> guarantee >> e.horizon_s)) continue;
    EXPECT_TRUE(guarantee == "gapless" || guarantee == "gap")
        << "bad guarantee '" << guarantee << "' in seeds.txt";
    e.guarantee = guarantee == "gap" ? appmodel::Guarantee::kGap
                                     : appmodel::Guarantee::kGapless;
    out.push_back(e);
  }
  return out;
}

TEST(ChaosRegressionTest, CorpusIsNonTrivial) {
  std::vector<CorpusEntry> corpus = load_corpus();
  EXPECT_GE(corpus.size(), 5u);
}

TEST(ChaosRegressionTest, EverySeedInCorpusRunsClean) {
  for (const CorpusEntry& e : load_corpus()) {
    chaos::EngineOptions opt;
    opt.scenario.seed = e.seed;
    opt.scenario.guarantee = e.guarantee;
    opt.plan.horizon = seconds(e.horizon_s);
    chaos::ChaosResult r = chaos::ChaosEngine(opt).run();

    const char* g =
        e.guarantee == appmodel::Guarantee::kGap ? "gap" : "gapless";
    EXPECT_TRUE(r.quiesced) << "seed " << e.seed << " did not quiesce";
    for (const chaos::Violation& v : r.violations)
      ADD_FAILURE() << "seed " << e.seed << " (" << g
                    << "): " << chaos::to_string(v) << "\n  repro: "
                    << "chaos_run --seed " << e.seed << " --guarantee " << g
                    << " --duration " << e.horizon_s;
    EXPECT_GT(r.faults_injected, 0u) << "seed " << e.seed;
    EXPECT_GT(r.delivered, 0u) << "seed " << e.seed;

    // Replay determinism: the same seed must reproduce the same fault
    // trace and end state, or the corpus is not a regression oracle.
    chaos::ChaosResult r2 = chaos::ChaosEngine(opt).run();
    EXPECT_EQ(r.trace_hash, r2.trace_hash)
        << "seed " << e.seed << " (" << g << ") is nondeterministic";
  }
}

}  // namespace
}  // namespace riv
