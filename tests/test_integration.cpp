// Integration tests: full runtime + real application graphs from the
// Table 1 catalog, under crashes, partitions, recoveries, and sensor
// failures — the scenarios §2 motivates.
#include <gtest/gtest.h>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv {
namespace {

using workload::HomeDeployment;

devices::SensorSpec sensor_of(std::uint16_t id, devices::SensorKind kind,
                              double rate_hz, std::uint32_t payload = 4) {
  devices::SensorSpec spec;
  spec.id = SensorId{id};
  spec.name = devices::to_string(kind);
  spec.kind = kind;
  spec.tech = devices::Technology::kIp;
  spec.payload_size = payload;
  spec.rate_hz = rate_hz;
  return spec;
}

devices::ActuatorSpec actuator_of(std::uint16_t id) {
  devices::ActuatorSpec spec;
  spec.id = ActuatorId{id};
  spec.name = "actuator" + std::to_string(id);
  spec.tech = devices::Technology::kIp;
  return spec;
}

TEST(Integration, IntrusionDetectionSurvivesLossCrashAndSensorDeath) {
  HomeDeployment::Options opt;
  opt.seed = 51;
  opt.n_processes = 4;
  HomeDeployment home(opt);
  std::vector<SensorId> doors;
  for (std::uint16_t i = 1; i <= 3; ++i) {
    devices::LinkParams lossy;
    lossy.loss_prob = 0.25;
    home.add_sensor(sensor_of(i, devices::SensorKind::kDoor, 0.5),
                    {home.pid(i % 4), home.pid((i + 1) % 4)}, lossy);
    doors.push_back(SensorId{i});
  }
  // The siren is reachable from two hosts, so it stays actuatable when
  // the app-bearing process crashes.
  home.add_actuator(actuator_of(1), {home.pid(0), home.pid(1)});
  home.deploy(workload::apps::intrusion_detection(AppId{1}, doors,
                                                  ActuatorId{1}));
  home.start();
  home.run_for(seconds(30));
  const devices::Actuator& siren = home.bus().actuator(ActuatorId{1});
  std::uint64_t healthy = siren.actions();
  EXPECT_GT(healthy, 5u);

  home.active_logic_process(AppId{1})->crash();
  home.run_for(seconds(30));
  std::uint64_t after_crash = siren.actions();
  EXPECT_GT(after_crash, healthy + 5);  // alarms keep firing

  home.bus().sensor(SensorId{1}).crash();
  home.bus().sensor(SensorId{2}).crash();
  home.run_for(seconds(30));
  EXPECT_GT(siren.actions(), after_crash);  // one sensor still suffices
}

TEST(Integration, FallAlertNeverMissedUnderGapless) {
  HomeDeployment::Options opt;
  opt.seed = 52;
  opt.n_processes = 3;
  HomeDeployment home(opt);
  home.add_sensor(sensor_of(1, devices::SensorKind::kWearable, 0.5),
                  home.processes());
  home.add_actuator(actuator_of(1), home.processes());
  home.deploy(workload::apps::fall_alert(AppId{1}, SensorId{1},
                                         ActuatorId{1}));
  home.start();
  home.run_for(seconds(20));
  home.active_logic_process(AppId{1})->crash();
  home.run_for(seconds(20));
  std::uint64_t emitted = home.bus().sensor(SensorId{1}).events_emitted();
  std::uint64_t delivered = home.metrics().counter_value("app1.delivered");
  EXPECT_GE(delivered + 1, emitted);  // nothing missed across failover
  // Falls are value==1 events: half the emissions alert the caregiver.
  EXPECT_GE(home.bus().actuator(ActuatorId{1}).actions(), emitted / 2 - 1);
}

TEST(Integration, SurveillanceStreamsLargeCameraFrames) {
  HomeDeployment::Options opt;
  opt.seed = 53;
  opt.n_processes = 3;
  HomeDeployment home(opt);
  devices::SensorSpec cam =
      sensor_of(1, devices::SensorKind::kCamera, 10.0, 18 * 1024);
  cam.value_base = 0.9;  // always an "unknown object"
  cam.value_amplitude = 0.0;
  cam.value_noise = 0.0;
  home.add_sensor(cam, {home.pid(1)});
  home.add_actuator(actuator_of(1), {home.pid(0)});
  home.deploy(workload::apps::surveillance(AppId{1}, SensorId{1},
                                           ActuatorId{1}, 0.5));
  home.start();
  home.run_for(seconds(20));
  std::uint64_t emitted = home.bus().sensor(SensorId{1}).events_emitted();
  EXPECT_GE(home.metrics().counter_value("app1.delivered"), emitted - 3);
  EXPECT_GE(home.bus().actuator(ActuatorId{1}).actions(), emitted - 5);
  // 18 KB frames replicated across 3 processes: real bytes on the wire.
  EXPECT_GT(home.metrics().counter_value("net.bytes.ring_event"),
            emitted * 18 * 1024 * 2);
}

TEST(Integration, CrashRecoveryRestoresEventLogFromStableStore) {
  HomeDeployment::Options opt;
  opt.seed = 54;
  opt.n_processes = 3;
  HomeDeployment home(opt);
  home.add_sensor(sensor_of(1, devices::SensorKind::kDoor, 10.0),
                  {home.pid(1)});
  home.add_actuator(actuator_of(1), {home.pid(0)});
  home.deploy(workload::apps::turn_light_on_off(AppId{1}, SensorId{1},
                                                ActuatorId{1}));
  home.start();
  home.run_for(seconds(10));
  core::EventLog* log_before = home.process(2).event_log(AppId{1});
  std::size_t events_before = log_before->size(SensorId{1});
  EXPECT_GT(events_before, 50u);

  home.process(2).crash();
  home.run_for(seconds(5));
  home.process(2).recover();
  home.run_for(seconds(1));
  core::EventLog* log_after = home.process(2).event_log(AppId{1});
  // The recovered incarnation reloaded everything it had persisted.
  EXPECT_GE(log_after->size(SensorId{1}), events_before);
}

TEST(Integration, RecoveredProcessCatchesUpViaSuccessorSync) {
  HomeDeployment::Options opt;
  opt.seed = 55;
  opt.n_processes = 3;
  HomeDeployment home(opt);
  home.add_sensor(sensor_of(1, devices::SensorKind::kDoor, 10.0),
                  {home.pid(1)});
  home.add_actuator(actuator_of(1), {home.pid(0)});
  home.deploy(workload::apps::turn_light_on_off(AppId{1}, SensorId{1},
                                                ActuatorId{1}));
  home.start();
  home.run_for(seconds(10));
  home.process(2).crash();
  home.run_for(seconds(20));  // 200 events happen while p3 is down
  home.process(2).recover();
  home.run_for(seconds(10));
  std::uint64_t emitted = home.bus().sensor(SensorId{1}).events_emitted();
  // §4.1 successor sync: p3's predecessor re-sends everything it missed.
  EXPECT_GE(home.process(2).event_log(AppId{1})->size(SensorId{1}),
            emitted - 5);
}

TEST(Integration, PartitionHealReplicatesEventsToBothSides) {
  HomeDeployment::Options opt;
  opt.seed = 56;
  opt.n_processes = 4;
  HomeDeployment home(opt);
  // Sensor reachable only from p2 (side A during the partition).
  home.add_sensor(sensor_of(1, devices::SensorKind::kDoor, 10.0),
                  {home.pid(1)});
  home.add_actuator(actuator_of(1), {home.pid(0)});
  home.deploy(workload::apps::turn_light_on_off(AppId{1}, SensorId{1},
                                                ActuatorId{1}));
  home.start();
  home.run_for(seconds(5));
  home.net().set_partition({{home.pid(0), home.pid(1)},
                            {home.pid(2), home.pid(3)}});
  home.run_for(seconds(20));
  // Side B heard nothing new from the sensor during the partition.
  std::size_t side_b_during =
      home.process(2).event_log(AppId{1})->size(SensorId{1});
  home.net().heal_partition();
  home.run_for(seconds(10));
  std::uint64_t emitted = home.bus().sensor(SensorId{1}).events_emitted();
  EXPECT_GT(emitted, side_b_during + 150);
  // After healing, the ring sync replicates the partition-era suffix.
  EXPECT_GE(home.process(2).event_log(AppId{1})->size(SensorId{1}),
            emitted - 5);
  EXPECT_GE(home.process(3).event_log(AppId{1})->size(SensorId{1}),
            emitted - 5);
}

TEST(Integration, TwoAppsShareOneSensorIndependently) {
  HomeDeployment::Options opt;
  opt.seed = 57;
  opt.n_processes = 3;
  HomeDeployment home(opt);
  home.add_sensor(sensor_of(1, devices::SensorKind::kDoor, 5.0),
                  {home.pid(1)});
  home.add_actuator(actuator_of(1), {home.pid(0)});
  home.add_actuator(actuator_of(2), {home.pid(2)});
  home.deploy(workload::apps::turn_light_on_off(AppId{1}, SensorId{1},
                                                ActuatorId{1}));
  home.deploy(workload::apps::turn_light_on_off(AppId{2}, SensorId{1},
                                                ActuatorId{2}));
  home.start();
  home.run_for(seconds(20));
  std::uint64_t emitted = home.bus().sensor(SensorId{1}).events_emitted();
  EXPECT_GE(home.metrics().counter_value("app1.delivered"), emitted - 2);
  EXPECT_GE(home.metrics().counter_value("app2.delivered"), emitted - 2);
  EXPECT_GT(home.bus().actuator(ActuatorId{1}).actions(), 0u);
  EXPECT_GT(home.bus().actuator(ActuatorId{2}).actions(), 0u);
}

TEST(Integration, EnergyBillingAccumulatesCostGapless) {
  HomeDeployment::Options opt;
  opt.seed = 58;
  opt.n_processes = 3;
  HomeDeployment home(opt);
  devices::SensorSpec power =
      sensor_of(1, devices::SensorKind::kEnergy, 1.0, 8);
  power.value_base = 1200.0;  // watts
  power.value_amplitude = 0.0;
  power.value_noise = 10.0;
  home.add_sensor(power, home.processes());
  home.add_actuator(actuator_of(1), {home.pid(0)});
  home.deploy(workload::apps::energy_billing(AppId{1}, SensorId{1},
                                             ActuatorId{1}, seconds(10),
                                             0.25));
  home.start();
  home.run_for(seconds(65));
  const devices::Actuator& display = home.bus().actuator(ActuatorId{1});
  EXPECT_GE(display.actions(), 5u);  // one cost update per 10 s window
  EXPECT_GT(display.state(), 0.0);
}

TEST(Integration, AutomatedLightingWorksWithTwoDeadModalities) {
  HomeDeployment::Options opt;
  opt.seed = 59;
  opt.n_processes = 3;
  HomeDeployment home(opt);
  devices::SensorSpec motion =
      sensor_of(1, devices::SensorKind::kMotion, 2.0);
  home.add_sensor(motion, {home.pid(0)});
  home.add_sensor(sensor_of(2, devices::SensorKind::kCamera, 2.0, 10240),
                  {home.pid(1)});
  home.add_sensor(sensor_of(3, devices::SensorKind::kMicrophone, 2.0, 1024),
                  {home.pid(2)});
  home.add_actuator(actuator_of(1), {home.pid(0)});
  home.deploy(workload::apps::automated_lighting(
      AppId{1}, SensorId{1}, SensorId{2}, SensorId{3}, ActuatorId{1}));
  home.start();
  home.bus().sensor(SensorId{2}).crash();
  home.bus().sensor(SensorId{3}).crash();
  home.run_for(seconds(30));
  // FTCombiner(2): motion alone keeps the app alive.
  EXPECT_GT(home.bus().actuator(ActuatorId{1}).actions(), 10u);
}

}  // namespace
}  // namespace riv
