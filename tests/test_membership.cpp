// Unit tests for the keep-alive failure detector and local views.
#include <gtest/gtest.h>

#include <map>

#include "membership/failure_detector.hpp"
#include "net/sim_network.hpp"

namespace riv::membership {
namespace {

struct Fixture : ::testing::Test {
  Fixture() : sim(13), net(sim, metrics) {}

  // Build a detector for process p (ids 1..n).
  FailureDetector& make(std::uint16_t p, int n, Config cfg = {}) {
    ProcessId self{p};
    std::vector<ProcessId> all;
    for (std::uint16_t i = 1; i <= n; ++i) all.push_back(ProcessId{i});
    timers[self] = std::make_unique<sim::ProcessTimers>(sim);
    auto fd = std::make_unique<FailureDetector>(
        *timers.at(self), net.endpoint(self), all, cfg);
    net.endpoint(self).set_handler(
        [raw = fd.get()](const net::Message& m) {
          if (m.type == net::MsgType::kKeepAlive) raw->on_keepalive(m);
        });
    auto& ref = *fd;
    fds[self] = std::move(fd);
    return ref;
  }

  void kill(std::uint16_t p) {
    ProcessId self{p};
    net.set_process_up(self, false);
    timers.at(self)->cancel_all();
  }

  // Recovery = a fresh runtime incarnation with a fresh detector, exactly
  // as RivuletProcess::recover() rebuilds its volatile state.
  void revive(std::uint16_t p, int n) {
    ProcessId self{p};
    net.set_process_up(self, true);
    make(p, n).start();
  }

  sim::Simulation sim;
  metrics::Registry metrics;
  net::SimNetwork net;
  std::map<ProcessId, std::unique_ptr<sim::ProcessTimers>> timers;
  std::map<ProcessId, std::unique_ptr<FailureDetector>> fds;
};

TEST_F(Fixture, InitialViewIsOptimistic) {
  auto& fd = make(1, 3);
  fd.start();
  EXPECT_EQ(fd.view().size(), 3u);
}

TEST_F(Fixture, StableViewsWhenAllAlive) {
  for (std::uint16_t p = 1; p <= 3; ++p) make(p, 3).start();
  sim.run_for(seconds(10));
  for (std::uint16_t p = 1; p <= 3; ++p)
    EXPECT_EQ(fds.at(ProcessId{p})->view().size(), 3u);
}

TEST_F(Fixture, CrashDetectedWithinTimeout) {
  for (std::uint16_t p = 1; p <= 3; ++p) make(p, 3).start();
  sim.run_for(seconds(5));
  kill(3);
  sim.run_for(seconds(3));  // > 2 s timeout + period
  EXPECT_FALSE(fds.at(ProcessId{1})->alive(ProcessId{3}));
  EXPECT_FALSE(fds.at(ProcessId{2})->alive(ProcessId{3}));
  EXPECT_TRUE(fds.at(ProcessId{1})->alive(ProcessId{2}));
}

TEST_F(Fixture, DetectionLatencyRespectsConfiguredTimeout) {
  Config cfg;
  cfg.period = milliseconds(200);
  cfg.timeout = milliseconds(800);
  for (std::uint16_t p = 1; p <= 2; ++p) make(p, 2, cfg).start();
  sim.run_for(seconds(2));
  kill(2);
  sim.run_for(milliseconds(600));
  EXPECT_TRUE(fds.at(ProcessId{1})->alive(ProcessId{2}));  // not yet
  sim.run_for(milliseconds(600));
  EXPECT_FALSE(fds.at(ProcessId{1})->alive(ProcessId{2}));
}

TEST_F(Fixture, RecoveryRejoinsView) {
  for (std::uint16_t p = 1; p <= 3; ++p) make(p, 3).start();
  sim.run_for(seconds(5));
  kill(3);
  sim.run_for(seconds(3));
  EXPECT_FALSE(fds.at(ProcessId{1})->alive(ProcessId{3}));
  revive(3, 3);
  sim.run_for(seconds(2));
  EXPECT_TRUE(fds.at(ProcessId{1})->alive(ProcessId{3}));
}

TEST_F(Fixture, NeverSuspectsSelf) {
  auto& fd = make(1, 5);
  fd.start();
  sim.run_for(seconds(30));  // everyone else silent forever
  EXPECT_TRUE(fd.alive(ProcessId{1}));
  EXPECT_EQ(fd.view().size(), 1u);
}

TEST_F(Fixture, PartitionSplitsViewsOnBothSides) {
  for (std::uint16_t p = 1; p <= 4; ++p) make(p, 4).start();
  sim.run_for(seconds(5));
  net.set_partition({{ProcessId{1}, ProcessId{2}},
                     {ProcessId{3}, ProcessId{4}}});
  sim.run_for(seconds(4));
  EXPECT_EQ(fds.at(ProcessId{1})->view().size(), 2u);
  EXPECT_EQ(fds.at(ProcessId{3})->view().size(), 2u);
  EXPECT_TRUE(fds.at(ProcessId{1})->alive(ProcessId{2}));
  EXPECT_TRUE(fds.at(ProcessId{3})->alive(ProcessId{4}));
  net.heal_partition();
  sim.run_for(seconds(2));
  EXPECT_EQ(fds.at(ProcessId{1})->view().size(), 4u);
  EXPECT_EQ(fds.at(ProcessId{4})->view().size(), 4u);
}

TEST_F(Fixture, AsymmetricPartitionSplitsViewsAsymmetrically) {
  // Keep-alives from 1 still reach 2, but nothing from 2 reaches 1: the
  // local views must disagree — 1 drops 2 while 2 keeps 1. This is the
  // one-directional link failure of §2.1 that symmetric partition tests
  // cannot exercise.
  for (std::uint16_t p = 1; p <= 3; ++p) make(p, 3).start();
  sim.run_for(seconds(5));
  net.set_reachable(ProcessId{2}, ProcessId{1}, false);
  sim.run_for(seconds(4));  // > 2 s timeout + period
  EXPECT_FALSE(fds.at(ProcessId{1})->alive(ProcessId{2}));
  EXPECT_TRUE(fds.at(ProcessId{2})->alive(ProcessId{1}));
  // Third parties hear both sides and suspect no one.
  EXPECT_TRUE(fds.at(ProcessId{3})->alive(ProcessId{1}));
  EXPECT_TRUE(fds.at(ProcessId{3})->alive(ProcessId{2}));
  EXPECT_EQ(fds.at(ProcessId{1})->view().size(), 2u);
  EXPECT_EQ(fds.at(ProcessId{2})->view().size(), 3u);
  EXPECT_EQ(fds.at(ProcessId{3})->view().size(), 3u);
}

TEST_F(Fixture, AsymmetricPartitionHealRestoresFullViews) {
  for (std::uint16_t p = 1; p <= 3; ++p) make(p, 3).start();
  sim.run_for(seconds(5));
  net.set_reachable(ProcessId{2}, ProcessId{1}, false);
  sim.run_for(seconds(4));
  EXPECT_FALSE(fds.at(ProcessId{1})->alive(ProcessId{2}));
  net.set_reachable(ProcessId{2}, ProcessId{1}, true);
  sim.run_for(seconds(2));  // next keep-alive refreshes the entry
  EXPECT_TRUE(fds.at(ProcessId{1})->alive(ProcessId{2}));
  for (std::uint16_t p = 1; p <= 3; ++p)
    EXPECT_EQ(fds.at(ProcessId{p})->view().size(), 3u);
}

TEST_F(Fixture, MutualAsymmetricSeversActLikeSymmetricPartition) {
  // Severing both directions one edge at a time must converge to the
  // same views a symmetric two-way split would produce.
  for (std::uint16_t p = 1; p <= 2; ++p) make(p, 2).start();
  sim.run_for(seconds(5));
  net.set_reachable(ProcessId{1}, ProcessId{2}, false);
  net.set_reachable(ProcessId{2}, ProcessId{1}, false);
  sim.run_for(seconds(4));
  EXPECT_FALSE(fds.at(ProcessId{1})->alive(ProcessId{2}));
  EXPECT_FALSE(fds.at(ProcessId{2})->alive(ProcessId{1}));
  EXPECT_EQ(fds.at(ProcessId{1})->view().size(), 1u);
  EXPECT_EQ(fds.at(ProcessId{2})->view().size(), 1u);
}

TEST_F(Fixture, ViewChangeCallbackFires) {
  int changes = 0;
  auto& fd1 = make(1, 2);
  fd1.set_on_view_change([&](const std::set<ProcessId>&) { ++changes; });
  make(2, 2).start();
  fd1.start();
  sim.run_for(seconds(3));
  int baseline = changes;
  kill(2);
  sim.run_for(seconds(4));
  EXPECT_GT(changes, baseline);
  EXPECT_EQ(fd1.view().size(), 1u);
}

TEST_F(Fixture, PiggybackPayloadRoundTrips) {
  auto& fd1 = make(1, 2);
  auto& fd2 = make(2, 2);
  fd1.set_payload_provider([] {
    BinaryWriter w;
    w.u32(0xc0ffee);
    return w.take();
  });
  std::uint32_t seen = 0;
  ProcessId seen_from{};
  fd2.set_payload_handler([&](ProcessId from, BinaryReader& r) {
    seen = r.u32();
    seen_from = from;
  });
  fd1.start();
  fd2.start();
  sim.run_for(seconds(2));
  EXPECT_EQ(seen, 0xc0ffeeu);
  EXPECT_EQ(seen_from, ProcessId{1});
}

TEST_F(Fixture, SingleProcessHomeWorks) {
  // §4.1: Rivulet must work with any number of processes, including one.
  auto& fd = make(1, 1);
  fd.start();
  sim.run_for(seconds(10));
  EXPECT_EQ(fd.view().size(), 1u);
}

}  // namespace
}  // namespace riv::membership
