// Tier-2 gate for the fleet runner's headline guarantee: a 256-home fleet
// (campaign included) is bit-identical under --jobs 1 and --jobs 8 —
// merged metrics fingerprint, fleet fault digest, and every per-home
// outcome row. This is the CI-side twin of bench_fleet's determinism
// scenario, big enough that shards genuinely interleave across workers.
#include <gtest/gtest.h>

#include <cstdint>

#include "fleet/fleet.hpp"

namespace riv::fleet {
namespace {

FleetOptions fleet_256(int jobs) {
  FleetOptions opt;
  opt.seed = 42;
  opt.homes = 256;
  opt.jobs = jobs;
  opt.shard_size = 16;  // 16 shards: plenty of scheduling freedom
  opt.population.sim_duration = seconds(30);
  opt.keep_home_rows = true;

  CampaignEvent wifi;
  wifi.kind = CampaignFault::kWifiOutage;
  wifi.at = seconds(5);
  wifi.duration = seconds(10);
  wifi.fraction = 0.05;
  opt.campaign.events.push_back(wifi);
  CampaignEvent blip;
  blip.kind = CampaignFault::kPowerBlip;
  blip.at = seconds(12);
  blip.duration = seconds(3);
  blip.fraction = 0.1;
  blip.region = 2;
  opt.campaign.events.push_back(blip);
  return opt;
}

TEST(FleetDeterminism, Fleet256BitIdenticalJobs1Vs8) {
  FleetResult serial = run_fleet(fleet_256(1));
  FleetResult threaded = run_fleet(fleet_256(8));

  // The run did real work on both sides of the comparison.
  ASSERT_EQ(serial.homes, 256u);
  EXPECT_GT(serial.delivered, 0u);
  EXPECT_GT(serial.homes_hit, 0u);
  EXPECT_GT(serial.faults_injected, 0u);

  EXPECT_EQ(serial.fault_digest, threaded.fault_digest);
  EXPECT_EQ(registry_fingerprint(serial.merged),
            registry_fingerprint(threaded.merged));
  EXPECT_EQ(serial.sim_events, threaded.sim_events);
  EXPECT_EQ(serial.emitted, threaded.emitted);
  EXPECT_EQ(serial.delivered, threaded.delivered);
  EXPECT_EQ(serial.faults_injected, threaded.faults_injected);
  EXPECT_EQ(serial.homes_hit, threaded.homes_hit);
  EXPECT_EQ(serial.homes_hit_survived, threaded.homes_hit_survived);
  EXPECT_EQ(serial.homes_survived, threaded.homes_survived);

  ASSERT_EQ(serial.rows.size(), threaded.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i)
    EXPECT_EQ(serial.rows[i], threaded.rows[i]) << "home " << i;

  // And a third run at an awkward job count for good measure.
  FleetResult odd = run_fleet(fleet_256(3));
  EXPECT_EQ(odd.fault_digest, serial.fault_digest);
  EXPECT_EQ(registry_fingerprint(odd.merged),
            registry_fingerprint(serial.merged));
}

}  // namespace
}  // namespace riv::fleet
