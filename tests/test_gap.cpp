// End-to-end tests of the Gap delivery protocol (§4.2): single-forwarder
// chain, loss produces gaps (by contract), no duplicate deliveries, and
// forwarder takeover after crashes.
#include <gtest/gtest.h>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv {
namespace {

using workload::HomeDeployment;

constexpr AppId kApp{1};
constexpr SensorId kDoor{1};
constexpr ActuatorId kLight{1};

devices::SensorSpec door_sensor(double rate_hz) {
  devices::SensorSpec spec;
  spec.id = kDoor;
  spec.name = "door";
  spec.kind = devices::SensorKind::kDoor;
  spec.tech = devices::Technology::kIp;
  spec.payload_size = 4;
  spec.rate_hz = rate_hz;
  return spec;
}

devices::ActuatorSpec light_actuator() {
  devices::ActuatorSpec spec;
  spec.id = kLight;
  spec.name = "light";
  spec.tech = devices::Technology::kIp;
  return spec;
}

struct GapFixture : ::testing::Test {
  std::unique_ptr<HomeDeployment> make_home(int n,
                                            std::vector<int> receivers,
                                            double loss = 0.0,
                                            double rate = 10.0,
                                            std::uint64_t seed = 23) {
    HomeDeployment::Options opt;
    opt.seed = seed;
    opt.n_processes = n;
    auto home = std::make_unique<HomeDeployment>(opt);
    std::vector<ProcessId> linked;
    for (int i : receivers) linked.push_back(home->pid(i));
    devices::LinkParams params;
    params.loss_prob = loss;
    home->add_sensor(door_sensor(rate), linked, params);
    home->add_actuator(light_actuator(), {home->pid(0)});
    home->deploy(workload::apps::turn_light_on_off(
        kApp, kDoor, kLight, appmodel::Guarantee::kGap));
    return home;
  }
};

TEST_F(GapFixture, DeliversAllWithoutFailures) {
  auto home = make_home(5, {1});
  home->start();
  home->run_for(seconds(20));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  EXPECT_GE(home->process(0).delivered(kApp), emitted - 2);
  EXPECT_LE(home->process(0).delivered(kApp), emitted);
}

TEST_F(GapFixture, UsesOneMessagePerEvent) {
  auto home = make_home(5, {1});
  home->start();
  home->run_for(seconds(20));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  std::uint64_t forwards = home->metrics().counter_value(
      "net.msgs.gap_forward");
  EXPECT_NEAR(static_cast<double>(forwards) / static_cast<double>(emitted),
              1.0, 0.05);
  EXPECT_EQ(home->metrics().counter_value("net.msgs.ring_event"), 0u);
}

TEST_F(GapFixture, OnlyClosestReceiverForwards) {
  // Receivers p2, p3, p4; the chain is placement order (p1 first, then
  // ids ascending), so p2 forwards and the others discard.
  auto home = make_home(5, {1, 2, 3});
  home->start();
  home->run_for(seconds(20));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  std::uint64_t forwards =
      home->metrics().counter_value("net.msgs.gap_forward");
  EXPECT_NEAR(static_cast<double>(forwards) / static_cast<double>(emitted),
              1.0, 0.05);
  const core::GapStream* s4 =
      home->process(3).gap_stream(kApp, kDoor);
  ASSERT_NE(s4, nullptr);
  EXPECT_EQ(s4->forwards(), 0u);
  EXPECT_GT(s4->discarded(), 0u);
}

TEST_F(GapFixture, NoDuplicateDeliveries) {
  auto home = make_home(5, {1, 2, 3});
  home->start();
  home->run_for(seconds(20));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  EXPECT_LE(home->process(0).delivered(kApp), emitted);
}

TEST_F(GapFixture, LinkLossCreatesGapsProportionalToLoss) {
  // 30% loss on the forwarder's link with 3 receivers: Gap makes no
  // cross-process recovery attempt, so ~30% of events are simply missing.
  auto home = make_home(5, {1, 2, 3}, /*loss=*/0.3, /*rate=*/10.0);
  home->start();
  home->run_for(seconds(60));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  double ratio = static_cast<double>(home->process(0).delivered(kApp)) /
                 static_cast<double>(emitted);
  EXPECT_NEAR(ratio, 0.7, 0.06);
}

TEST_F(GapFixture, AppBearingReceiverDeliversLocallyWithZeroMessages) {
  // The sensor reaches the app-bearing process itself (Fig 4b's setup):
  // no forwarding at all.
  auto home = make_home(5, {0});
  home->start();
  home->run_for(seconds(10));
  std::uint64_t emitted = home->bus().sensor(kDoor).events_emitted();
  EXPECT_GE(home->process(0).delivered(kApp), emitted - 1);
  EXPECT_EQ(home->metrics().counter_value("net.msgs.gap_forward"), 0u);
}

TEST_F(GapFixture, ForwarderCrashHandedToNextInChain) {
  auto home = make_home(5, {1, 2}, 0.0, 10.0);
  home->start();
  home->run_for(seconds(10));
  std::uint64_t before = home->process(0).delivered(kApp);
  home->process(1).crash();  // p2 was the forwarder
  home->run_for(seconds(10));
  std::uint64_t after = home->process(0).delivered(kApp);
  // Detection takes ~2 s => ~20 events gap, then p3 takes over.
  std::uint64_t gained = after - before;
  EXPECT_GT(gained, 60u);   // most of the 100 events of the second phase
  EXPECT_LT(gained, 95u);   // but a real gap exists
  const core::GapStream* s3 = home->process(2).gap_stream(kApp, kDoor);
  ASSERT_NE(s3, nullptr);
  EXPECT_GT(s3->forwards(), 0u);
}

TEST_F(GapFixture, CrashOfAppBearerPromotesNextAndEventsFlow) {
  auto home = make_home(3, {1, 2});
  home->start();
  home->run_for(seconds(5));
  ASSERT_TRUE(home->process(0).logic_active(kApp));
  home->process(0).crash();
  home->run_for(seconds(5));
  // p2 hosts the sensor and should now also bear the app (it has the most
  // active devices among survivors).
  core::RivuletProcess* active = home->active_logic_process(kApp);
  ASSERT_NE(active, nullptr);
  EXPECT_GT(active->delivered(kApp), 10u);
}

}  // namespace
}  // namespace riv
