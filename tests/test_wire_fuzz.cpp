// Wire/codec round-trip property tests.
//
// For every protocol message type: randomized payloads encode and decode
// back to the same value; every strict prefix of a valid encoding is
// rejected by the try_decode_* variant (returns nullopt instead of
// asserting); and random byte soup never crashes a decoder.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "core/wire.hpp"

namespace riv {
namespace {

using namespace riv::core::wire;

constexpr int kRounds = 200;

devices::SensorEvent random_event(Rng& rng) {
  devices::SensorEvent e;
  e.id = EventId{SensorId{static_cast<std::uint16_t>(rng.next() % 100)},
                 static_cast<std::uint32_t>(rng.next() % 100000)};
  e.epoch = static_cast<std::uint32_t>(rng.next() % 1000);
  e.emitted_at = TimePoint{static_cast<std::int64_t>(rng.next() % 100000000)};
  e.poll_based = rng.bernoulli(0.5);
  e.value = rng.uniform(-100.0, 100.0);
  // Quantized small payloads round-trip the value exactly only for sizes
  // >= 8 (f64); keep it in the >= 8 regime so equality checks are exact.
  e.payload_size = 8 + static_cast<std::uint32_t>(rng.next() % 64);
  return e;
}

std::set<ProcessId> random_pid_set(Rng& rng) {
  std::set<ProcessId> out;
  int n = static_cast<int>(rng.next() % 8);
  for (int i = 0; i < n; ++i)
    out.insert(ProcessId{static_cast<std::uint16_t>(1 + rng.next() % 32)});
  return out;
}

devices::Command random_command(Rng& rng) {
  devices::Command c;
  c.id = CommandId{ProcessId{static_cast<std::uint16_t>(1 + rng.next() % 8)},
                   static_cast<std::uint32_t>(rng.next() % 100000)};
  c.actuator = ActuatorId{static_cast<std::uint16_t>(1 + rng.next() % 16)};
  c.test_and_set = rng.bernoulli(0.3);
  c.expected = rng.uniform(0.0, 1.0);
  c.value = rng.uniform(0.0, 1.0);
  c.issued_at = TimePoint{static_cast<std::int64_t>(rng.next() % 100000000)};
  c.cause = ProvenanceId{static_cast<std::uint16_t>(rng.next() % 100),
                         static_cast<std::uint32_t>(rng.next() % 100000)};
  return c;
}

void expect_event_eq(const devices::SensorEvent& a,
                     const devices::SensorEvent& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.emitted_at.us, b.emitted_at.us);
  EXPECT_EQ(a.poll_based, b.poll_based);
  EXPECT_DOUBLE_EQ(a.value, b.value);
  EXPECT_EQ(a.payload_size, b.payload_size);
}

// Every strict prefix of a valid encoding must be rejected: the decoders
// consume an exact, self-describing structure, so cutting any suffix off
// must trip the bounds-checked reader (or the consumed-exactly check).
template <typename TryDecode>
void expect_all_prefixes_rejected(const std::vector<std::byte>& buf,
                                  TryDecode try_decode) {
  for (std::size_t n = 0; n < buf.size(); ++n) {
    std::vector<std::byte> prefix(buf.begin(),
                                  buf.begin() + static_cast<long>(n));
    EXPECT_FALSE(try_decode(prefix).has_value()) << "prefix length " << n;
  }
}

TEST(WireFuzzTest, RingPayloadRoundTripsAndRejectsTruncation) {
  Rng rng(1);
  for (int i = 0; i < kRounds; ++i) {
    RingPayload p;
    p.app = AppId{static_cast<std::uint16_t>(1 + rng.next() % 8)};
    p.sensor = SensorId{static_cast<std::uint16_t>(1 + rng.next() % 16)};
    p.seen = random_pid_set(rng);
    p.need = random_pid_set(rng);
    p.event = random_event(rng);
    std::vector<std::byte> buf = encode(p);

    std::optional<RingPayload> q = try_decode_ring(buf);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->app, p.app);
    EXPECT_EQ(q->sensor, p.sensor);
    EXPECT_EQ(q->seen, p.seen);
    EXPECT_EQ(q->need, p.need);
    expect_event_eq(q->event, p.event);

    if (i < 10) expect_all_prefixes_rejected(buf, try_decode_ring);
  }
}

TEST(WireFuzzTest, EventPayloadRoundTripsAndRejectsTruncation) {
  Rng rng(2);
  for (int i = 0; i < kRounds; ++i) {
    EventPayload p;
    p.app = AppId{static_cast<std::uint16_t>(1 + rng.next() % 8)};
    p.sensor = SensorId{static_cast<std::uint16_t>(1 + rng.next() % 16)};
    p.event = random_event(rng);
    std::vector<std::byte> buf = encode_event_payload(p);

    std::optional<EventPayload> q = try_decode_event_payload(buf);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->app, p.app);
    EXPECT_EQ(q->sensor, p.sensor);
    expect_event_eq(q->event, p.event);

    if (i < 10) expect_all_prefixes_rejected(buf, try_decode_event_payload);
  }
}

TEST(WireFuzzTest, SyncRequestAndRoleChangeRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < kRounds; ++i) {
    AppId app{static_cast<std::uint16_t>(rng.next() % 1000)};

    std::vector<std::byte> buf = encode_sync_request(app);
    std::optional<AppId> q = try_decode_sync_request(buf);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, app);
    expect_all_prefixes_rejected(buf, try_decode_sync_request);

    buf = encode_role_change(app);
    q = try_decode_role_change(buf);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, app);
    expect_all_prefixes_rejected(buf, try_decode_role_change);
  }
}

TEST(WireFuzzTest, SyncResponseRoundTripsAndRejectsTruncation) {
  Rng rng(4);
  for (int i = 0; i < kRounds; ++i) {
    SyncResponse p;
    p.app = AppId{static_cast<std::uint16_t>(1 + rng.next() % 8)};
    int n = static_cast<int>(rng.next() % 6);
    for (int j = 0; j < n; ++j) {
      p.high_waters.emplace_back(
          SensorId{static_cast<std::uint16_t>(1 + rng.next() % 16)},
          TimePoint{static_cast<std::int64_t>(rng.next() % 100000000)});
    }
    std::vector<std::byte> buf = encode(p);

    std::optional<SyncResponse> q = try_decode_sync_response(buf);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->app, p.app);
    ASSERT_EQ(q->high_waters.size(), p.high_waters.size());
    for (std::size_t j = 0; j < p.high_waters.size(); ++j) {
      EXPECT_EQ(q->high_waters[j].first, p.high_waters[j].first);
      EXPECT_EQ(q->high_waters[j].second.us, p.high_waters[j].second.us);
    }

    if (i < 10) expect_all_prefixes_rejected(buf, try_decode_sync_response);
  }
}

TEST(WireFuzzTest, CommandPayloadRoundTripsAndRejectsTruncation) {
  Rng rng(5);
  for (int i = 0; i < kRounds; ++i) {
    CommandPayload p;
    p.app = AppId{static_cast<std::uint16_t>(1 + rng.next() % 8)};
    p.guarantee = static_cast<std::uint8_t>(rng.next() % 2);
    p.command = random_command(rng);
    std::vector<std::byte> buf = encode(p);

    std::optional<CommandPayload> q = try_decode_command_payload(buf);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->app, p.app);
    EXPECT_EQ(q->guarantee, p.guarantee);
    EXPECT_EQ(q->command.id, p.command.id);
    EXPECT_EQ(q->command.actuator, p.command.actuator);
    EXPECT_EQ(q->command.test_and_set, p.command.test_and_set);
    EXPECT_DOUBLE_EQ(q->command.value, p.command.value);
    EXPECT_EQ(q->command.cause, p.command.cause);

    // The provenance cause rides at the end of the command encoding, so
    // strict-prefix rejection specifically covers truncation inside it.
    if (i < 10)
      expect_all_prefixes_rejected(buf, try_decode_command_payload);
  }
}

TEST(WireFuzzTest, CommandAckRoundTripsAndRejectsTruncation) {
  Rng rng(6);
  for (int i = 0; i < kRounds; ++i) {
    CommandAck p;
    p.app = AppId{static_cast<std::uint16_t>(1 + rng.next() % 8)};
    p.command =
        CommandId{ProcessId{static_cast<std::uint16_t>(1 + rng.next() % 8)},
                  static_cast<std::uint32_t>(rng.next() % 100000)};
    std::vector<std::byte> buf = encode(p);

    std::optional<CommandAck> q = try_decode_command_ack(buf);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->app, p.app);
    EXPECT_EQ(q->command, p.command);
    expect_all_prefixes_rejected(buf, try_decode_command_ack);
  }
}

// --- Integrity trailer (seal / verify_and_strip) -------------------------

TEST(WireFuzzTest, SealedFrameRoundTripsBodyAndTrailer) {
  Rng rng(8);
  for (int i = 0; i < kRounds; ++i) {
    EventPayload p;
    p.app = AppId{static_cast<std::uint16_t>(1 + rng.next() % 8)};
    p.sensor = SensorId{static_cast<std::uint16_t>(1 + rng.next() % 16)};
    p.event = random_event(rng);
    std::vector<std::byte> base = encode_event_payload(p);

    std::uint64_t key = rng.next();
    std::uint64_t chain = rng.next();
    std::vector<std::byte> sealed = base;
    seal(sealed, key, chain);
    ASSERT_EQ(sealed.size(), base.size() + kIntegrityTrailerBytes);

    std::vector<std::byte> body;
    IntegrityTrailer tr;
    ASSERT_TRUE(verify_and_strip(sealed, key, body, &tr));
    EXPECT_EQ(body, base);
    EXPECT_EQ(tr.chain, chain);
    EXPECT_EQ(tr.mac, compute_mac(key, base.data(), base.size(), chain));

    // The stripped body decodes back to the original payload.
    std::optional<EventPayload> q = try_decode_event_payload(body);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->app, p.app);
    EXPECT_EQ(q->sensor, p.sensor);
    expect_event_eq(q->event, p.event);
  }
}

// The tamper-evidence property the Byzantine defense rests on: ANY
// single-byte change to a sealed frame — body, marker, chain, or MAC —
// must fail verification. Never crash, never verify.
TEST(WireFuzzTest, AnySingleByteMutationOfSealedFrameIsRejected) {
  Rng rng(9);
  for (int round = 0; round < 20; ++round) {
    RingPayload p;
    p.app = AppId{static_cast<std::uint16_t>(1 + rng.next() % 8)};
    p.sensor = SensorId{static_cast<std::uint16_t>(1 + rng.next() % 16)};
    p.seen = random_pid_set(rng);
    p.need = random_pid_set(rng);
    p.event = random_event(rng);
    std::vector<std::byte> sealed = encode(p);
    std::uint64_t key = rng.next();
    seal(sealed, key, rng.next());

    std::vector<std::byte> body;
    for (std::size_t pos = 0; pos < sealed.size(); ++pos) {
      std::byte flip{static_cast<unsigned char>(1 + rng.next() % 255)};
      std::vector<std::byte> mutated = sealed;
      mutated[pos] ^= flip;  // nonzero XOR: guaranteed to differ
      EXPECT_FALSE(verify_and_strip(mutated, key, body, nullptr))
          << "mutation at byte " << pos << " verified";
    }
  }
}

TEST(WireFuzzTest, WrongKeyAndTruncationRejectSealedFrames) {
  Rng rng(10);
  for (int i = 0; i < kRounds; ++i) {
    CommandPayload p;
    p.app = AppId{static_cast<std::uint16_t>(1 + rng.next() % 8)};
    p.guarantee = static_cast<std::uint8_t>(rng.next() % 2);
    p.command = random_command(rng);
    std::vector<std::byte> sealed = encode(p);
    std::uint64_t key = rng.next();
    seal(sealed, key, 0);

    std::vector<std::byte> body;
    ASSERT_TRUE(verify_and_strip(sealed, key, body, nullptr));
    EXPECT_FALSE(verify_and_strip(sealed, key ^ 1, body, nullptr));
    EXPECT_FALSE(verify_and_strip(sealed, ~key, body, nullptr));

    // Every strict prefix fails: too short for a trailer, or the marker /
    // MAC no longer lines up with the shifted tail.
    if (i < 10) {
      for (std::size_t n = 0; n < sealed.size(); ++n) {
        std::vector<std::byte> prefix(sealed.begin(),
                                      sealed.begin() + static_cast<long>(n));
        EXPECT_FALSE(verify_and_strip(prefix, key, body, nullptr))
            << "prefix length " << n << " verified";
      }
    }
  }
}

// An unsealed frame must never pass verification (a receiver that
// requires the trailer rejects plain frames outright), and random soup
// must never produce a valid seal.
TEST(WireFuzzTest, UnsealedAndRandomBuffersNeverVerify) {
  Rng rng(11);
  std::vector<std::byte> body;
  for (int i = 0; i < 500; ++i) {
    std::size_t len = rng.next() % 128;
    std::vector<std::byte> buf(len);
    for (std::size_t j = 0; j < len; ++j)
      buf[j] = static_cast<std::byte>(rng.next() & 0xff);
    EXPECT_FALSE(verify_and_strip(buf, rng.next(), body, nullptr));
  }
}

// Random byte soup: decoders must reject or succeed, never crash or read
// out of bounds. (ASAN builds make this test meaningfully stronger.)
TEST(WireFuzzTest, RandomBytesNeverCrashDecoders) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    std::size_t len = rng.next() % 128;
    std::vector<std::byte> buf(len);
    for (std::size_t j = 0; j < len; ++j)
      buf[j] = static_cast<std::byte>(rng.next() & 0xff);
    (void)try_decode_ring(buf);
    (void)try_decode_event_payload(buf);
    (void)try_decode_sync_request(buf);
    (void)try_decode_sync_response(buf);
    (void)try_decode_command_payload(buf);
    (void)try_decode_role_change(buf);
    (void)try_decode_command_ack(buf);
  }
}

}  // namespace
}  // namespace riv
