// Tests for actuation-command routing (§4/§5): Gap single-target
// delivery, Gapless replication + ack + retry across crashes, Test&Set
// protection with concurrent actives during partitions.
#include <gtest/gtest.h>

#include "workload/apps.hpp"
#include "workload/deployment.hpp"

namespace riv {
namespace {

using workload::HomeDeployment;

constexpr AppId kApp{1};
constexpr SensorId kDoor{1};
constexpr ActuatorId kLight{1};

devices::SensorSpec door_sensor(double rate_hz = 2.0) {
  devices::SensorSpec spec;
  spec.id = kDoor;
  spec.name = "door";
  spec.kind = devices::SensorKind::kDoor;
  spec.tech = devices::Technology::kIp;
  spec.rate_hz = rate_hz;
  return spec;
}

devices::ActuatorSpec actuator(bool idempotent = true, bool tas = false) {
  devices::ActuatorSpec spec;
  spec.id = kLight;
  spec.name = "light";
  spec.tech = devices::Technology::kIp;
  spec.idempotent = idempotent;
  spec.supports_test_and_set = tas;
  return spec;
}

TEST(Commands, RemoteActuationWorksForBothGuarantees) {
  for (auto g : {appmodel::Guarantee::kGap, appmodel::Guarantee::kGapless}) {
    HomeDeployment::Options opt;
    opt.seed = 71;
    opt.n_processes = 3;
    // Force the logic away from the actuator host: p2 bears the app, only
    // p3 reaches the light.
    opt.config.placement_override[kApp] = {ProcessId{2}, ProcessId{1},
                                           ProcessId{3}};
    HomeDeployment home(opt);
    home.add_sensor(door_sensor(), {home.pid(1)});
    home.add_actuator(actuator(), {home.pid(2)});
    home.deploy(workload::apps::turn_light_on_off(kApp, kDoor, kLight, g));
    home.start();
    home.run_for(seconds(20));
    EXPECT_GT(home.bus().actuator(kLight).actions(), 30u)
        << "guarantee " << to_string(g);
  }
}

TEST(Commands, GaplessCommandRetriedAcrossActuatorHostCrash) {
  HomeDeployment::Options opt;
  opt.seed = 72;
  opt.n_processes = 3;
  opt.config.placement_override[kApp] = {ProcessId{1}, ProcessId{2},
                                         ProcessId{3}};
  HomeDeployment home(opt);
  home.add_sensor(door_sensor(/*rate=*/1.0), {home.pid(0)});
  // The light is reachable from p2 and p3, never from the app host p1.
  home.add_actuator(actuator(), {home.pid(1), home.pid(2)});
  home.deploy(workload::apps::turn_light_on_off(
      kApp, kDoor, kLight, appmodel::Guarantee::kGapless));
  home.start();
  home.run_for(seconds(10));
  const devices::Actuator& light = home.bus().actuator(kLight);
  EXPECT_GT(light.actions(), 0u);

  // Kill BOTH actuator hosts briefly: commands issued meanwhile are
  // pending; when p2 recovers, the retry pass delivers them.
  home.process(1).crash();
  home.process(2).crash();
  home.run_for(seconds(10));
  std::uint64_t during = light.actions();
  home.process(1).recover();
  home.run_for(seconds(15));
  EXPECT_GT(light.actions(), during);
  EXPECT_GT(home.metrics().counter_value("app1.commands_retried"), 0u);
}

TEST(Commands, GapCommandsAreNotRetried) {
  HomeDeployment::Options opt;
  opt.seed = 73;
  opt.n_processes = 3;
  opt.config.placement_override[kApp] = {ProcessId{1}, ProcessId{2},
                                         ProcessId{3}};
  HomeDeployment home(opt);
  home.add_sensor(door_sensor(1.0), {home.pid(0)});
  home.add_actuator(actuator(), {home.pid(1)});
  home.deploy(workload::apps::turn_light_on_off(
      kApp, kDoor, kLight, appmodel::Guarantee::kGap));
  home.start();
  home.run_for(seconds(10));
  home.process(1).crash();
  home.run_for(seconds(20));
  home.process(1).recover();
  home.run_for(seconds(10));
  EXPECT_EQ(home.metrics().counter_value("app1.commands_retried"), 0u);
}

TEST(Commands, RetryDuplicatesAreAbsorbedByIdempotentDevice) {
  HomeDeployment::Options opt;
  opt.seed = 74;
  opt.n_processes = 4;
  opt.config.placement_override[kApp] = {ProcessId{1}, ProcessId{2},
                                         ProcessId{3}, ProcessId{4}};
  HomeDeployment home(opt);
  home.add_sensor(door_sensor(2.0), {home.pid(0)});
  home.add_actuator(actuator(/*idempotent=*/true), {home.pid(1), home.pid(2)});
  home.deploy(workload::apps::turn_light_on_off(
      kApp, kDoor, kLight, appmodel::Guarantee::kGapless));
  home.start();
  home.run_for(seconds(30));
  const devices::Actuator& light = home.bus().actuator(kLight);
  // Gapless replication to two actuator hosts double-delivers every
  // command — harmless on an idempotent device, by design.
  EXPECT_GT(light.duplicate_deliveries(), 0u);
  EXPECT_EQ(light.unwarranted_actions(), 0u);
}

TEST(Commands, NonIdempotentDeviceProtectedByTestAndSet) {
  HomeDeployment::Options opt;
  opt.seed = 75;
  opt.n_processes = 4;
  HomeDeployment home(opt);
  home.add_sensor(door_sensor(1.0), home.processes());
  home.add_actuator(actuator(/*idempotent=*/false, /*tas=*/true),
                    home.processes());

  // A coffee-maker app: brew (T&S idle->brewing) on each door event.
  appmodel::AppBuilder app(kApp, "coffee");
  auto op = app.add_operator("Brew");
  op.add_sensor(kDoor, appmodel::Guarantee::kGapless,
                appmodel::WindowSpec::count_window(1));
  op.add_actuator(kLight, appmodel::Guarantee::kGapless);
  op.handle_triggered_window(
      [](const std::vector<appmodel::StreamWindow>&,
         appmodel::TriggerContext& ctx) {
        ctx.actuate_test_and_set(kLight, 0.0, 1.0);
      });
  home.deploy(app.build());
  home.start();
  // Partition: two concurrent actives both command the coffee maker.
  home.run_for(seconds(5));
  home.net().set_partition({{home.pid(0), home.pid(1)},
                            {home.pid(2), home.pid(3)}});
  home.run_for(seconds(20));
  const devices::Actuator& maker = home.bus().actuator(kLight);
  // T&S: after the first accepted brew, every further 0->1 attempt is
  // rejected; no unwarranted double-brew ever happens.
  EXPECT_EQ(maker.unwarranted_actions(), 0u);
  EXPECT_GE(maker.rejected_test_and_set(), 1u);
  EXPECT_EQ(maker.actions(), 1u);
}

}  // namespace
}  // namespace riv
