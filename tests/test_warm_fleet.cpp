// Warm-fleet execution (DESIGN.md §16): snapshot-cloned warm-ups must be
// indistinguishable from cold re-execution — same outcome rows, fault
// digest, merged-metrics fingerprint, and sampled flight-trace hashes —
// for any --jobs value. These are the tier-1 differential gates; the
// 256-home × 3-campaign sweep lives in test_warm_fleet_determinism
// (tier2).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "checkpoint/clone.hpp"
#include "common/parallel.hpp"
#include "fleet/campaign.hpp"
#include "fleet/fleet.hpp"
#include "fleet/observe.hpp"
#include "fleet/population.hpp"

namespace riv::fleet {
namespace {

// Small-but-not-trivial fleet: every technology, bursts, both guarantees,
// a campaign that hits about half the homes, and a flight-recorder sample
// so the warm path has cold (sampled) homes interleaved with cloned ones.
FleetOptions warm_test_options() {
  FleetOptions opt;
  opt.seed = 7;
  opt.homes = 24;
  opt.jobs = 1;
  opt.shard_size = 8;
  opt.population.sim_duration = seconds(3);
  opt.observe.sample = 0.15;
  opt.keep_home_rows = true;
  opt.warm.prefix = seconds(2);

  CampaignEvent ev;
  ev.kind = CampaignFault::kWifiOutage;
  ev.at = seconds(1);
  ev.duration = seconds(1);
  ev.fraction = 0.5;
  opt.campaign.events.push_back(ev);
  return opt;
}

void expect_equal_results(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.fault_digest, b.fault_digest);
  EXPECT_EQ(registry_fingerprint(a.merged), registry_fingerprint(b.merged));
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.emitted, b.emitted);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.homes_hit, b.homes_hit);
  EXPECT_EQ(a.homes_hit_survived, b.homes_hit_survived);
  EXPECT_EQ(a.homes_survived, b.homes_survived);
  // Sampled flight recordings: identical homes sampled, identical bytes.
  ASSERT_EQ(a.observation.samples.size(), b.observation.samples.size());
  for (std::size_t i = 0; i < a.observation.samples.size(); ++i) {
    EXPECT_EQ(a.observation.samples[i].index, b.observation.samples[i].index);
    EXPECT_EQ(a.observation.samples[i].trace_hash,
              b.observation.samples[i].trace_hash);
    EXPECT_EQ(a.observation.samples[i].records,
              b.observation.samples[i].records);
  }
}

// --- warm ≡ cold ----------------------------------------------------------

TEST(WarmFleet, WarmEqualsColdSingleCampaign) {
  FleetOptions cold = warm_test_options();
  cold.warm.enabled = false;
  FleetOptions warm = cold;
  warm.warm.enabled = true;

  const FleetResult rc = run_fleet(cold);
  const FleetResult rw = run_fleet(warm);
  ASSERT_FALSE(rc.rows.empty());
  EXPECT_GT(rc.homes_hit, 0u);
  expect_equal_results(rc, rw);
}

TEST(WarmFleet, WarmEqualsColdMultiCampaign) {
  FleetOptions cold = warm_test_options();
  cold.homes = 12;
  cold.warm.enabled = false;
  cold.warm.resalt = 0xabcdef;  // campaigns decorrelate via perturb

  std::vector<CampaignPlan> campaigns(3);
  CampaignEvent ev;
  ev.at = seconds(1);
  ev.duration = seconds(1);
  ev.fraction = 0.6;
  ev.kind = CampaignFault::kWifiOutage;
  campaigns[0].events.push_back(ev);
  ev.kind = CampaignFault::kPowerBlip;
  campaigns[1].events.push_back(ev);
  ev.kind = CampaignFault::kSensorDegrade;
  campaigns[2].events.push_back(ev);

  FleetOptions warm = cold;
  warm.warm.enabled = true;

  const std::vector<FleetResult> rc = run_fleet_campaigns(cold, campaigns);
  const std::vector<FleetResult> rw = run_fleet_campaigns(warm, campaigns);
  ASSERT_EQ(rc.size(), campaigns.size());
  ASSERT_EQ(rw.size(), campaigns.size());
  for (std::size_t c = 0; c < campaigns.size(); ++c)
    expect_equal_results(rc[c], rw[c]);
  // The three campaigns are genuinely different experiments.
  EXPECT_NE(rc[0].fault_digest, rc[1].fault_digest);
  EXPECT_NE(registry_fingerprint(rc[0].merged),
            registry_fingerprint(rc[1].merged));
}

TEST(WarmFleet, WarmJobsInvariance) {
  FleetOptions warm = warm_test_options();
  warm.warm.enabled = true;
  FleetOptions warm8 = warm;
  warm8.jobs = 8;

  const FleetResult r1 = run_fleet(warm);
  const FleetResult r8 = run_fleet(warm8);
  expect_equal_results(r1, r8);
}

// --- sampled attestation --------------------------------------------------

TEST(WarmFleet, AttestationSelectionIsDeterministic) {
  EXPECT_FALSE(home_attested(1, 5, 0.0));
  EXPECT_TRUE(home_attested(1, 5, 1.0));
  int picked = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const bool a = home_attested(42, i, 0.1);
    EXPECT_EQ(a, home_attested(42, i, 0.1));  // pure function
    picked += a ? 1 : 0;
  }
  EXPECT_GT(picked, 50);
  EXPECT_LT(picked, 200);
}

TEST(WarmFleet, FullAttestationPassesAndChangesNothing) {
  FleetOptions warm = warm_test_options();
  warm.homes = 8;
  warm.warm.enabled = true;
  const FleetResult base = run_fleet(warm);
  // Byte-attest every clone against the PR 7 checkpoint surface: an
  // honest build must pass, and attestation must not perturb results.
  warm.warm.attest_sample = 1.0;
  const FleetResult attested = run_fleet(warm);
  expect_equal_results(base, attested);
}

// --- identity-mismatch rejection ------------------------------------------

TEST(WarmFleet, ApplyRejectsWrongHome) {
  PopulationModel model;
  model.sim_duration = seconds(2);
  const HomeSpec a = sample_home(model, 7, 0);
  const HomeSpec b = sample_home(model, 7, 1);

  auto source = build_home(a);
  checkpoint::enable_clone_tracking(*source);
  source->start();
  source->run_for(seconds(1));
  checkpoint::WarmImage img;
  checkpoint::capture_warm_home(*source, a.seed, img, /*with_attest=*/false);

  // Different home seed: rejected cleanly, with the reason observable.
  auto target = build_home(b);
  std::string err;
  EXPECT_FALSE(checkpoint::apply_warm_home(img, *target, b.seed, &err));
  EXPECT_NE(err.find("identity mismatch"), std::string::npos) << err;

  // Same identity: accepted, and the clone keeps running.
  auto clone = build_home(a);
  err = "sentinel";
  ASSERT_TRUE(checkpoint::apply_warm_home(img, *clone, a.seed, &err)) << err;
  EXPECT_TRUE(err.empty());
  clone->run_for(seconds(1));
}

TEST(WarmFleet, ApplyRejectsWrongShape) {
  PopulationModel model;
  model.sim_duration = seconds(2);
  const HomeSpec spec = sample_home(model, 7, 0);
  auto source = build_home(spec);
  checkpoint::enable_clone_tracking(*source);
  source->start();
  source->run_for(seconds(1));
  checkpoint::WarmImage img;
  checkpoint::capture_warm_home(*source, spec.seed, img, false);

  // Forge a deployment-level identity mismatch without touching the
  // blobs: the gate fires before any restore call runs.
  checkpoint::WarmImage forged = img;
  forged.n_processes += 1;
  auto target = build_home(spec);
  std::string err;
  EXPECT_FALSE(checkpoint::apply_warm_home(forged, *target, spec.seed, &err));
  EXPECT_NE(err.find("identity mismatch"), std::string::npos) << err;
  // The untouched target is still usable cold.
  target->start();
  target->run_for(seconds(1));
}

// --- worker pool ----------------------------------------------------------

TEST(WorkerPool, PersistsAcrossCallsAndStaysByteIdentical) {
  auto square = [](std::size_t i) { return i * i; };
  const std::vector<std::size_t> serial =
      parallel_map<std::size_t>(1, 64, square);
  const std::vector<std::size_t> par = parallel_map<std::size_t>(4, 64, square);
  EXPECT_EQ(serial, par);
  const std::size_t threads_after_first = WorkerPool::instance().size();
  EXPECT_GE(threads_after_first, 3u);
  for (int round = 0; round < 50; ++round)
    EXPECT_EQ(parallel_map<std::size_t>(4, 16, square),
              parallel_map<std::size_t>(4, 16, square));
  // Pool threads are reused, not respawned per call: 100 more runs at the
  // same width added no threads.
  EXPECT_EQ(WorkerPool::instance().size(), threads_after_first);
}

TEST(WorkerPool, PropagatesFirstExceptionAndStopsClaiming) {
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_map<int>(4, 1000,
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == 3) throw std::runtime_error("boom");
                          return 0;
                        }),
      std::runtime_error);
  // Workers stop claiming once a failure is flagged.
  EXPECT_LT(ran.load(), 1000);
  // The pool survives the failed run and serves the next one.
  EXPECT_EQ(parallel_map<int>(4, 8, [](std::size_t i) {
              return static_cast<int>(i);
            }),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(WorkerPool, NestedParallelMapFallsBackInline) {
  // A parallel_map inside a pool worker must not deadlock: the inner call
  // degrades to the serial loop on that worker.
  const std::vector<std::size_t> out =
      parallel_map<std::size_t>(4, 8, [](std::size_t i) {
        const std::vector<std::size_t> inner =
            parallel_map<std::size_t>(4, 4, [](std::size_t j) { return j; });
        return i + inner[3];
      });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i + 3);
}

}  // namespace
}  // namespace riv::fleet
