# Empty compiler generated dependencies file for smart_home_tour.
# This may be replaced when dependencies are built.
