file(REMOVE_RECURSE
  "CMakeFiles/smart_home_tour.dir/smart_home_tour.cpp.o"
  "CMakeFiles/smart_home_tour.dir/smart_home_tour.cpp.o.d"
  "smart_home_tour"
  "smart_home_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_home_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
