# Empty dependencies file for temperature_averaging.
# This may be replaced when dependencies are built.
