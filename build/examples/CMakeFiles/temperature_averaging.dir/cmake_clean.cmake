file(REMOVE_RECURSE
  "CMakeFiles/temperature_averaging.dir/temperature_averaging.cpp.o"
  "CMakeFiles/temperature_averaging.dir/temperature_averaging.cpp.o.d"
  "temperature_averaging"
  "temperature_averaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temperature_averaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
