file(REMOVE_RECURSE
  "CMakeFiles/elder_care.dir/elder_care.cpp.o"
  "CMakeFiles/elder_care.dir/elder_care.cpp.o.d"
  "elder_care"
  "elder_care.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elder_care.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
