# Empty dependencies file for bench_ablation_keepalive.
# This may be replaced when dependencies are built.
