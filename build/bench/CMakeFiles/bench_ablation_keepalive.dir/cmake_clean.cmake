file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_keepalive.dir/bench_ablation_keepalive.cpp.o"
  "CMakeFiles/bench_ablation_keepalive.dir/bench_ablation_keepalive.cpp.o.d"
  "bench_ablation_keepalive"
  "bench_ablation_keepalive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_keepalive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
