file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_serialization.dir/bench_micro_serialization.cpp.o"
  "CMakeFiles/bench_micro_serialization.dir/bench_micro_serialization.cpp.o.d"
  "bench_micro_serialization"
  "bench_micro_serialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
