# Empty dependencies file for bench_micro_serialization.
# This may be replaced when dependencies are built.
