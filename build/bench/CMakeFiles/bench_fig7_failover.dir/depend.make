# Empty dependencies file for bench_fig7_failover.
# This may be replaced when dependencies are built.
