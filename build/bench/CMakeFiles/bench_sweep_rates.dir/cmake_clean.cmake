file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_rates.dir/bench_sweep_rates.cpp.o"
  "CMakeFiles/bench_sweep_rates.dir/bench_sweep_rates.cpp.o.d"
  "bench_sweep_rates"
  "bench_sweep_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
