# Empty compiler generated dependencies file for bench_sweep_rates.
# This may be replaced when dependencies are built.
