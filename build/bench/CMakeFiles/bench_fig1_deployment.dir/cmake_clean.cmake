file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_deployment.dir/bench_fig1_deployment.cpp.o"
  "CMakeFiles/bench_fig1_deployment.dir/bench_fig1_deployment.cpp.o.d"
  "bench_fig1_deployment"
  "bench_fig1_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
