file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ring_vs_rb.dir/bench_ablation_ring_vs_rb.cpp.o"
  "CMakeFiles/bench_ablation_ring_vs_rb.dir/bench_ablation_ring_vs_rb.cpp.o.d"
  "bench_ablation_ring_vs_rb"
  "bench_ablation_ring_vs_rb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ring_vs_rb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
