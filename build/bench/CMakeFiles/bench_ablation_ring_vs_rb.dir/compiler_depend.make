# Empty compiler generated dependencies file for bench_ablation_ring_vs_rb.
# This may be replaced when dependencies are built.
