file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_linkloss.dir/bench_fig6_linkloss.cpp.o"
  "CMakeFiles/bench_fig6_linkloss.dir/bench_fig6_linkloss.cpp.o.d"
  "bench_fig6_linkloss"
  "bench_fig6_linkloss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_linkloss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
