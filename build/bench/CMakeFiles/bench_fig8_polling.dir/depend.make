# Empty dependencies file for bench_fig8_polling.
# This may be replaced when dependencies are built.
