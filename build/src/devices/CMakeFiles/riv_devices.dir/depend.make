# Empty dependencies file for riv_devices.
# This may be replaced when dependencies are built.
