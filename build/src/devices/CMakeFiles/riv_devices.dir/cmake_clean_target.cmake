file(REMOVE_RECURSE
  "libriv_devices.a"
)
