file(REMOVE_RECURSE
  "CMakeFiles/riv_devices.dir/actuator.cpp.o"
  "CMakeFiles/riv_devices.dir/actuator.cpp.o.d"
  "CMakeFiles/riv_devices.dir/adapters.cpp.o"
  "CMakeFiles/riv_devices.dir/adapters.cpp.o.d"
  "CMakeFiles/riv_devices.dir/event.cpp.o"
  "CMakeFiles/riv_devices.dir/event.cpp.o.d"
  "CMakeFiles/riv_devices.dir/home_bus.cpp.o"
  "CMakeFiles/riv_devices.dir/home_bus.cpp.o.d"
  "CMakeFiles/riv_devices.dir/sensor.cpp.o"
  "CMakeFiles/riv_devices.dir/sensor.cpp.o.d"
  "libriv_devices.a"
  "libriv_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riv_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
