
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/actuator.cpp" "src/devices/CMakeFiles/riv_devices.dir/actuator.cpp.o" "gcc" "src/devices/CMakeFiles/riv_devices.dir/actuator.cpp.o.d"
  "/root/repo/src/devices/adapters.cpp" "src/devices/CMakeFiles/riv_devices.dir/adapters.cpp.o" "gcc" "src/devices/CMakeFiles/riv_devices.dir/adapters.cpp.o.d"
  "/root/repo/src/devices/event.cpp" "src/devices/CMakeFiles/riv_devices.dir/event.cpp.o" "gcc" "src/devices/CMakeFiles/riv_devices.dir/event.cpp.o.d"
  "/root/repo/src/devices/home_bus.cpp" "src/devices/CMakeFiles/riv_devices.dir/home_bus.cpp.o" "gcc" "src/devices/CMakeFiles/riv_devices.dir/home_bus.cpp.o.d"
  "/root/repo/src/devices/sensor.cpp" "src/devices/CMakeFiles/riv_devices.dir/sensor.cpp.o" "gcc" "src/devices/CMakeFiles/riv_devices.dir/sensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/riv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/riv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
