file(REMOVE_RECURSE
  "CMakeFiles/riv_sim.dir/simulation.cpp.o"
  "CMakeFiles/riv_sim.dir/simulation.cpp.o.d"
  "libriv_sim.a"
  "libriv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
