file(REMOVE_RECURSE
  "libriv_sim.a"
)
