# Empty compiler generated dependencies file for riv_sim.
# This may be replaced when dependencies are built.
