file(REMOVE_RECURSE
  "libriv_common.a"
)
