file(REMOVE_RECURSE
  "CMakeFiles/riv_common.dir/codec.cpp.o"
  "CMakeFiles/riv_common.dir/codec.cpp.o.d"
  "CMakeFiles/riv_common.dir/log.cpp.o"
  "CMakeFiles/riv_common.dir/log.cpp.o.d"
  "CMakeFiles/riv_common.dir/rng.cpp.o"
  "CMakeFiles/riv_common.dir/rng.cpp.o.d"
  "libriv_common.a"
  "libriv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
