# Empty dependencies file for riv_common.
# This may be replaced when dependencies are built.
