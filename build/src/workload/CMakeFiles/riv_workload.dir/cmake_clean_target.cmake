file(REMOVE_RECURSE
  "libriv_workload.a"
)
