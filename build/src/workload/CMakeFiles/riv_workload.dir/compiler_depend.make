# Empty compiler generated dependencies file for riv_workload.
# This may be replaced when dependencies are built.
