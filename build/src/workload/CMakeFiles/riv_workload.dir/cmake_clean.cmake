file(REMOVE_RECURSE
  "CMakeFiles/riv_workload.dir/apps.cpp.o"
  "CMakeFiles/riv_workload.dir/apps.cpp.o.d"
  "CMakeFiles/riv_workload.dir/deployment.cpp.o"
  "CMakeFiles/riv_workload.dir/deployment.cpp.o.d"
  "CMakeFiles/riv_workload.dir/fig1.cpp.o"
  "CMakeFiles/riv_workload.dir/fig1.cpp.o.d"
  "CMakeFiles/riv_workload.dir/mobility.cpp.o"
  "CMakeFiles/riv_workload.dir/mobility.cpp.o.d"
  "CMakeFiles/riv_workload.dir/topology.cpp.o"
  "CMakeFiles/riv_workload.dir/topology.cpp.o.d"
  "libriv_workload.a"
  "libriv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
