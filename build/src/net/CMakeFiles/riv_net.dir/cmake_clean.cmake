file(REMOVE_RECURSE
  "CMakeFiles/riv_net.dir/sim_network.cpp.o"
  "CMakeFiles/riv_net.dir/sim_network.cpp.o.d"
  "libriv_net.a"
  "libriv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
