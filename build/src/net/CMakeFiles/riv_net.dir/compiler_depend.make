# Empty compiler generated dependencies file for riv_net.
# This may be replaced when dependencies are built.
