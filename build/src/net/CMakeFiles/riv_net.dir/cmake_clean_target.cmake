file(REMOVE_RECURSE
  "libriv_net.a"
)
