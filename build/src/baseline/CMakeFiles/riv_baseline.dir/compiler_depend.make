# Empty compiler generated dependencies file for riv_baseline.
# This may be replaced when dependencies are built.
