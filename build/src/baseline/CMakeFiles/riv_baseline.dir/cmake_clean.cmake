file(REMOVE_RECURSE
  "CMakeFiles/riv_baseline.dir/broadcast_delivery.cpp.o"
  "CMakeFiles/riv_baseline.dir/broadcast_delivery.cpp.o.d"
  "CMakeFiles/riv_baseline.dir/uncoordinated_polling.cpp.o"
  "CMakeFiles/riv_baseline.dir/uncoordinated_polling.cpp.o.d"
  "libriv_baseline.a"
  "libriv_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riv_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
