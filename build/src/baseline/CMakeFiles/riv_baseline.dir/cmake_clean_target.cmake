file(REMOVE_RECURSE
  "libriv_baseline.a"
)
