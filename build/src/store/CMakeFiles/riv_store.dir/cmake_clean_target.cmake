file(REMOVE_RECURSE
  "libriv_store.a"
)
