file(REMOVE_RECURSE
  "CMakeFiles/riv_store.dir/replicated_store.cpp.o"
  "CMakeFiles/riv_store.dir/replicated_store.cpp.o.d"
  "libriv_store.a"
  "libriv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
