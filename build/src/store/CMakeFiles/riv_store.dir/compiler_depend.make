# Empty compiler generated dependencies file for riv_store.
# This may be replaced when dependencies are built.
