file(REMOVE_RECURSE
  "CMakeFiles/riv_appmodel.dir/graph.cpp.o"
  "CMakeFiles/riv_appmodel.dir/graph.cpp.o.d"
  "CMakeFiles/riv_appmodel.dir/logic.cpp.o"
  "CMakeFiles/riv_appmodel.dir/logic.cpp.o.d"
  "CMakeFiles/riv_appmodel.dir/marzullo.cpp.o"
  "CMakeFiles/riv_appmodel.dir/marzullo.cpp.o.d"
  "CMakeFiles/riv_appmodel.dir/window.cpp.o"
  "CMakeFiles/riv_appmodel.dir/window.cpp.o.d"
  "libriv_appmodel.a"
  "libriv_appmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riv_appmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
