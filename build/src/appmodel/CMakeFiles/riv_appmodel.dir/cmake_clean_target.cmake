file(REMOVE_RECURSE
  "libriv_appmodel.a"
)
