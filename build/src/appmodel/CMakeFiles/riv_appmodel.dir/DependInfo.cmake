
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/appmodel/graph.cpp" "src/appmodel/CMakeFiles/riv_appmodel.dir/graph.cpp.o" "gcc" "src/appmodel/CMakeFiles/riv_appmodel.dir/graph.cpp.o.d"
  "/root/repo/src/appmodel/logic.cpp" "src/appmodel/CMakeFiles/riv_appmodel.dir/logic.cpp.o" "gcc" "src/appmodel/CMakeFiles/riv_appmodel.dir/logic.cpp.o.d"
  "/root/repo/src/appmodel/marzullo.cpp" "src/appmodel/CMakeFiles/riv_appmodel.dir/marzullo.cpp.o" "gcc" "src/appmodel/CMakeFiles/riv_appmodel.dir/marzullo.cpp.o.d"
  "/root/repo/src/appmodel/window.cpp" "src/appmodel/CMakeFiles/riv_appmodel.dir/window.cpp.o" "gcc" "src/appmodel/CMakeFiles/riv_appmodel.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/riv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/riv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/riv_devices.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
