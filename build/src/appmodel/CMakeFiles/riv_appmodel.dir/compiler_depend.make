# Empty compiler generated dependencies file for riv_appmodel.
# This may be replaced when dependencies are built.
