file(REMOVE_RECURSE
  "libriv_metrics.a"
)
