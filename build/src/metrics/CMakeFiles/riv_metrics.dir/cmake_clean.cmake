file(REMOVE_RECURSE
  "CMakeFiles/riv_metrics.dir/metrics.cpp.o"
  "CMakeFiles/riv_metrics.dir/metrics.cpp.o.d"
  "libriv_metrics.a"
  "libriv_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riv_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
