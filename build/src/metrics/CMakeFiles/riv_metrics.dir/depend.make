# Empty dependencies file for riv_metrics.
# This may be replaced when dependencies are built.
