file(REMOVE_RECURSE
  "CMakeFiles/riv_membership.dir/failure_detector.cpp.o"
  "CMakeFiles/riv_membership.dir/failure_detector.cpp.o.d"
  "libriv_membership.a"
  "libriv_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riv_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
