# Empty dependencies file for riv_membership.
# This may be replaced when dependencies are built.
