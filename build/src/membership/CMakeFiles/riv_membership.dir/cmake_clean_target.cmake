file(REMOVE_RECURSE
  "libriv_membership.a"
)
