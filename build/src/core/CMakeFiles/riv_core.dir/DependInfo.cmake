
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/delivery/gap_stream.cpp" "src/core/CMakeFiles/riv_core.dir/delivery/gap_stream.cpp.o" "gcc" "src/core/CMakeFiles/riv_core.dir/delivery/gap_stream.cpp.o.d"
  "/root/repo/src/core/delivery/gapless_stream.cpp" "src/core/CMakeFiles/riv_core.dir/delivery/gapless_stream.cpp.o" "gcc" "src/core/CMakeFiles/riv_core.dir/delivery/gapless_stream.cpp.o.d"
  "/root/repo/src/core/event_log.cpp" "src/core/CMakeFiles/riv_core.dir/event_log.cpp.o" "gcc" "src/core/CMakeFiles/riv_core.dir/event_log.cpp.o.d"
  "/root/repo/src/core/exec/placement.cpp" "src/core/CMakeFiles/riv_core.dir/exec/placement.cpp.o" "gcc" "src/core/CMakeFiles/riv_core.dir/exec/placement.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/riv_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/riv_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/core/CMakeFiles/riv_core.dir/wire.cpp.o" "gcc" "src/core/CMakeFiles/riv_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/riv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/riv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/riv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/riv_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/riv_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/appmodel/CMakeFiles/riv_appmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/riv_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/riv_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
