file(REMOVE_RECURSE
  "libriv_core.a"
)
