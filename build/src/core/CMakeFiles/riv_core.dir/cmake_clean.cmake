file(REMOVE_RECURSE
  "CMakeFiles/riv_core.dir/delivery/gap_stream.cpp.o"
  "CMakeFiles/riv_core.dir/delivery/gap_stream.cpp.o.d"
  "CMakeFiles/riv_core.dir/delivery/gapless_stream.cpp.o"
  "CMakeFiles/riv_core.dir/delivery/gapless_stream.cpp.o.d"
  "CMakeFiles/riv_core.dir/event_log.cpp.o"
  "CMakeFiles/riv_core.dir/event_log.cpp.o.d"
  "CMakeFiles/riv_core.dir/exec/placement.cpp.o"
  "CMakeFiles/riv_core.dir/exec/placement.cpp.o.d"
  "CMakeFiles/riv_core.dir/runtime.cpp.o"
  "CMakeFiles/riv_core.dir/runtime.cpp.o.d"
  "CMakeFiles/riv_core.dir/wire.cpp.o"
  "CMakeFiles/riv_core.dir/wire.cpp.o.d"
  "libriv_core.a"
  "libriv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
