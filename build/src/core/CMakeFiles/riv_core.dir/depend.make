# Empty dependencies file for riv_core.
# This may be replaced when dependencies are built.
