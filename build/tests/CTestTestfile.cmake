# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_devices[1]_include.cmake")
include("/root/repo/build/tests/test_membership[1]_include.cmake")
include("/root/repo/build/tests/test_gapless[1]_include.cmake")
include("/root/repo/build/tests/test_window[1]_include.cmake")
include("/root/repo/build/tests/test_appmodel[1]_include.cmake")
include("/root/repo/build/tests/test_logic[1]_include.cmake")
include("/root/repo/build/tests/test_event_log[1]_include.cmake")
include("/root/repo/build/tests/test_gap[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_polling[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_commands[1]_include.cmake")
include("/root/repo/build/tests/test_store[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_gapless_unit[1]_include.cmake")
include("/root/repo/build/tests/test_mobility[1]_include.cmake")
include("/root/repo/build/tests/test_ring_model[1]_include.cmake")
include("/root/repo/build/tests/test_figure2[1]_include.cmake")
include("/root/repo/build/tests/test_sweeps[1]_include.cmake")
