
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_logic.cpp" "tests/CMakeFiles/test_logic.dir/test_logic.cpp.o" "gcc" "tests/CMakeFiles/test_logic.dir/test_logic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/riv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/riv_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/riv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/appmodel/CMakeFiles/riv_appmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/riv_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/riv_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/riv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/riv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/riv_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/riv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/riv_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
