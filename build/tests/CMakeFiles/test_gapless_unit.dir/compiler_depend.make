# Empty compiler generated dependencies file for test_gapless_unit.
# This may be replaced when dependencies are built.
