file(REMOVE_RECURSE
  "CMakeFiles/test_gapless_unit.dir/test_gapless_unit.cpp.o"
  "CMakeFiles/test_gapless_unit.dir/test_gapless_unit.cpp.o.d"
  "test_gapless_unit"
  "test_gapless_unit.pdb"
  "test_gapless_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gapless_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
