file(REMOVE_RECURSE
  "CMakeFiles/test_gapless.dir/test_gapless.cpp.o"
  "CMakeFiles/test_gapless.dir/test_gapless.cpp.o.d"
  "test_gapless"
  "test_gapless.pdb"
  "test_gapless[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gapless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
