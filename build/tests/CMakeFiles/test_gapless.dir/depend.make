# Empty dependencies file for test_gapless.
# This may be replaced when dependencies are built.
