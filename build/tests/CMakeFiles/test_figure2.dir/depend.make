# Empty dependencies file for test_figure2.
# This may be replaced when dependencies are built.
