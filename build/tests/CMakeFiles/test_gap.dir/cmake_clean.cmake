file(REMOVE_RECURSE
  "CMakeFiles/test_gap.dir/test_gap.cpp.o"
  "CMakeFiles/test_gap.dir/test_gap.cpp.o.d"
  "test_gap"
  "test_gap.pdb"
  "test_gap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
