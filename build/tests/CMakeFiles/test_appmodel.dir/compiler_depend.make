# Empty compiler generated dependencies file for test_appmodel.
# This may be replaced when dependencies are built.
