file(REMOVE_RECURSE
  "CMakeFiles/test_appmodel.dir/test_appmodel.cpp.o"
  "CMakeFiles/test_appmodel.dir/test_appmodel.cpp.o.d"
  "test_appmodel"
  "test_appmodel.pdb"
  "test_appmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_appmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
